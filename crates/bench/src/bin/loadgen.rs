//! Load generator for the allocation service: drives a fixed request mix
//! against `salsa-serve` over real sockets with several concurrent
//! clients, measures throughput and latency percentiles, and appends the
//! results to the `history` array of `BENCH_alloc.json` (schema in
//! EXPERIMENTS.md).
//!
//! Each client holds **one** connection for its whole share of the run
//! and keeps up to `--pipeline` requests in flight on it, paired to
//! responses by correlation id (binary protocol) or strict request order
//! (JSON lines). `--protocol` picks the wire encoding; the default
//! `auto` negotiates binary frames when the server speaks them.
//!
//! By default an in-process server is spun up on a loopback port so the
//! run is self-contained; pass `--addr HOST:PORT` to aim at an external
//! `salsa-hls serve` instead (the external server's stats are still read
//! over the wire).
//!
//! The mix deliberately repeats (benchmark, knobs) pairs so the
//! content-addressed cache sees real hits — the measured throughput is
//! the *service's*, cache included, which is the number an operator cares
//! about.
//!
//! `--verify-mix F` sends a fraction `F` of the requests with a
//! `verify` knob (`--verify-mode`, default `sample` — the mode built for
//! exactly this always-on-under-load role; `full` is audit-grade),
//! exercising the verifier lane under load. The run then measures
//! **two** passes against fresh in-process servers — a baseline with
//! verification off, then the mixed pass — and records both throughputs
//! plus the verifier-lane latency percentiles in a `loadgen-verify` row,
//! quantifying what certificates cost the allocation path.
//!
//! `--warm-mix` measures the warm-start path instead: a base EWF job
//! seeds the service's similarity index, a one-op variant is resubmitted
//! through the `reallocate` verb (warm), and the same variant runs cold
//! against a fresh server. Both jobs carry `verify: full`, so the warm
//! result's certificate is checked, and the row records how many trials
//! the warm search needed to reach its best against the cold job's whole
//! trial budget — the ISSUE 9 acceptance ratio (< 0.25).
//!
//! `--mem-mix` swaps the request mix for the memory benchmarks (fir8a,
//! mm2) and records the ISSUE 10 acceptance row: the mixed pass's
//! throughput/latency plus, for each memory benchmark, the certified
//! (`verify: full`) cost with the M move family on against the
//! `mem_moves: false` ablation (banks frozen at the initial round-robin
//! binding) — M-on must be strictly cheaper on both.
//!
//! Usage: `cargo run -p salsa-bench --bin loadgen --release --
//! [--quick] [--clients N] [--requests N] [--pipeline N]
//! [--protocol json|binary|auto] [--verify-mix F]
//! [--verify-mode sample|full] [--repeats N] [--warm-mix] [--mem-mix]
//! [--addr HOST:PORT] [--pr LABEL] [--no-write]`

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use salsa_bench::jsonstore::{
    existing_benchmark_rows, history_entry, prior_history, render_bench_file, same_label_rows,
    BENCH_FILE,
};
use salsa_serve::stats::percentile_ms;
use salsa_serve::{Json, Server, ServerConfig};
use salsa_wire::{Backoff, Connection, Protocol, WireCounts};

/// A request mix: the (bench, seed, restarts) tuples cycled across all
/// requests, plus the unique-tuple id of each entry (repeats share an id
/// so a verified tuple is verified *everywhere* it occurs, and become
/// cache hits after their first completion).
#[derive(Clone, Copy)]
struct Mix {
    entries: &'static [(&'static str, u64, u64)],
    tuples: &'static [usize],
}

/// The default scalar mix; `hal`/`fir` exercise the alias path.
const SCALAR_MIX: Mix = Mix {
    entries: &[
        ("ewf", 1, 2),
        ("dct", 1, 1),
        ("hal", 2, 2),
        ("ewf", 1, 2), // repeat → cache hit
        ("fir", 3, 1),
        ("dct", 1, 1), // repeat → cache hit
    ],
    tuples: &[0, 1, 2, 0, 3, 1],
};

/// The `--mem-mix` mix: memory benchmarks dominate (with repeats for
/// cache hits), one scalar job keeps the cache-key namespaces honest —
/// a memory row must never alias a scalar one.
const MEM_MIX: Mix = Mix {
    entries: &[
        ("fir8a", 7, 2),
        ("mm2", 7, 1),
        ("ewf", 1, 2),
        ("fir8a", 7, 2), // repeat → cache hit
        ("mm2", 7, 1),   // repeat → cache hit
        ("fir8a", 11, 1),
    ],
    tuples: &[0, 1, 2, 0, 1, 3],
};

struct ClientOutcome {
    ok: usize,
    errors: usize,
    retries: usize,
    latencies_us: Vec<u64>,
    /// Completion instants of *unverified* requests, as offsets from the
    /// pass epoch. The verifier-lane overhead metric is the throughput of
    /// these: requests that did not ask for a certificate must not slow
    /// down because others did.
    unverified_finish_us: Vec<u64>,
    counts: WireCounts,
    mode: &'static str,
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Which requests of a pass carry a `verify` knob, and which mode.
///
/// Selection is per unique job tuple, not per request index: operators
/// certify *job classes* (a design and knobs they will sign off on), so
/// every occurrence of a selected tuple asks for the same certificate —
/// and identical certified jobs dedupe through the result cache, exactly
/// as mixed production traffic would.
#[derive(Clone, Copy)]
struct VerifySpec {
    /// Verified share of the mix's unique job tuples, in permille.
    permille: usize,
    /// The `verify` value the selected requests carry.
    mode: &'static str,
    /// Whether selected requests actually carry the knob. A baseline
    /// pass uses `send: false` with the mixed pass's permille: requests
    /// are *classified* identically (so the two passes' unverified
    /// shares cover the same request indices and their throughputs
    /// compare like with like) but none ask for a certificate.
    send: bool,
}

impl VerifySpec {
    const OFF: VerifySpec = VerifySpec { permille: 0, mode: "off", send: false };

    /// The classification-only twin of this spec, for baseline passes.
    fn baseline_of(self) -> VerifySpec {
        VerifySpec { send: false, ..self }
    }

    /// Whether request `i` of the sequence is verified: the Bresenham
    /// spread of `permille`/1000 over the mix's unique tuples, so the
    /// verified share is deterministic and exact to one tuple.
    fn selected(&self, mix: Mix, i: usize) -> bool {
        let tuple = mix.tuples[i % mix.tuples.len()];
        ((tuple + 1) * self.permille) / 1000 > (tuple * self.permille) / 1000
    }
}

fn request_json(mix: Mix, mix_index: usize, verify: VerifySpec) -> Json {
    let (bench, seed, restarts) = mix.entries[mix_index % mix.entries.len()];
    let mut fields = vec![
        ("cmd", Json::Str("allocate".into())),
        ("bench", Json::Str(bench.into())),
        ("seed", Json::Int(seed as i64)),
        ("restarts", Json::Int(restarts as i64)),
        ("threads", Json::Int(1)),
        ("timeout_ms", Json::Int(120_000)),
    ];
    if verify.send && verify.selected(mix, mix_index) {
        fields.push(("verify", Json::Str(verify.mode.into())));
    }
    Json::obj(fields)
}

/// One client: its share of the request sequence over a single reused
/// connection, keeping up to `pipeline` requests in flight and retrying
/// backpressure rejections after the server's hint.
#[allow(clippy::too_many_arguments)]
fn client(
    addr: &str,
    protocol: Protocol,
    pipeline: usize,
    client_id: usize,
    clients: usize,
    total: usize,
    mix: Mix,
    verify: VerifySpec,
    epoch: Instant,
) -> ClientOutcome {
    let mut conn = Connection::connect(addr, protocol).expect("connect");
    let mut outcome = ClientOutcome {
        ok: 0,
        errors: 0,
        retries: 0,
        latencies_us: Vec::new(),
        unverified_finish_us: Vec::new(),
        counts: WireCounts::default(),
        mode: conn.mode_name(),
    };
    // Jittered exponential backoff for backpressure, seeded per client so
    // runs are reproducible but clients never retry in lockstep. The
    // server's `retry_after_ms` hint stays a floor: never come back early.
    let mut backoff = Backoff::new(
        0x10ad_6e4e ^ client_id as u64,
        std::time::Duration::from_millis(10),
        std::time::Duration::from_secs(2),
    );
    let mut todo: VecDeque<usize> = (client_id..total).step_by(clients).collect();
    // Correlation id → (mix index, first-send time). Latency spans the
    // whole request lifetime including backpressure retries, as before.
    let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
    while !todo.is_empty() || !in_flight.is_empty() {
        while in_flight.len() < pipeline.max(1) {
            let Some(request_no) = todo.pop_front() else { break };
            let started = Instant::now();
            let id = conn.send(&request_json(mix, request_no, verify)).expect("send");
            in_flight.insert(id, (request_no, started));
        }
        let (id, response) = conn.recv_any().expect("receive");
        let (request_no, started) = in_flight.remove(&id).expect("known correlation id");
        match response.get("status").and_then(Json::as_str) {
            Some("rejected") => {
                outcome.retries += 1;
                let hint = response.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(100);
                let delay = backoff.next_delay().max(std::time::Duration::from_millis(hint));
                // Sleeping stalls this client's whole window, which is
                // the point: backpressure means the server is saturated.
                std::thread::sleep(delay);
                let id = conn.send(&request_json(mix, request_no, verify)).expect("resend");
                in_flight.insert(id, (request_no, started));
            }
            Some("ok") => {
                outcome.ok += 1;
                backoff.reset();
                outcome
                    .latencies_us
                    .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                if !verify.selected(mix, request_no) {
                    outcome
                        .unverified_finish_us
                        .push(epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
            }
            _ => {
                outcome.errors += 1;
                outcome
                    .latencies_us
                    .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
        }
    }
    outcome.counts = conn.counts();
    outcome
}

fn server_stats(addr: &str, protocol: Protocol) -> Json {
    let mut conn = Connection::connect(addr, protocol).expect("connect for stats");
    let reply = conn
        .call(&Json::obj(vec![("cmd", Json::Str("stats".into()))]))
        .expect("stats");
    reply.get("stats").expect("stats body").clone()
}

fn stat(stats: &Json, path: &[&str]) -> u64 {
    node_at(stats, path).as_u64().unwrap_or(0)
}

fn statf(stats: &Json, path: &[&str]) -> f64 {
    node_at(stats, path).as_f64().unwrap_or(0.0)
}

fn node_at<'a>(stats: &'a Json, path: &[&str]) -> &'a Json {
    let mut node = stats;
    for key in path {
        node = node.get(key).unwrap_or(&Json::Null);
    }
    node
}

/// Everything one measured pass produces: client-side aggregates plus
/// the server's own stats snapshot taken right after the last response.
struct Pass {
    ok: usize,
    errors: usize,
    retries: usize,
    wall_secs: f64,
    throughput: f64,
    /// Throughput of the unverified share alone: count over the time to
    /// its own last completion. For a pass with verification off this is
    /// the overall throughput; for a mixed pass it isolates what the
    /// verifier lane cost the allocation path.
    unverified_throughput: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    wire: WireCounts,
    mode: &'static str,
    stats: Json,
}

/// Drives the full request sequence against `addr` and gathers the
/// pass's metrics. The server (when in-process) is managed by the
/// caller, so back-to-back passes can run against fresh caches.
///
/// With `warm`, one request per mix entry is issued (with this pass's
/// own verify spec) before the clock starts: cold allocations and
/// first-time certificates are one-off costs a service pays once per
/// job class, so the timed portion measures the steady state — where
/// the verifier lane's per-request cost is whatever the verdict cache
/// leaves. The server's stats still cover the warm-up, so the cold
/// certificate cost stays visible in the verify latency percentiles.
fn run_pass(
    addr: &str,
    protocol: Protocol,
    clients: usize,
    requests: usize,
    pipeline: usize,
    mix: Mix,
    verify: VerifySpec,
    warm: bool,
) -> Pass {
    if warm {
        let mut conn = Connection::connect(addr, protocol).expect("warmup connect");
        for i in 0..mix.entries.len() {
            loop {
                let reply = conn.call(&request_json(mix, i, verify)).expect("warmup request");
                match reply.get("status").and_then(Json::as_str) {
                    Some("rejected") => std::thread::sleep(std::time::Duration::from_millis(
                        reply.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(50),
                    )),
                    _ => break,
                }
            }
        }
    }
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                scope.spawn(move || {
                    client(addr, protocol, pipeline, id, clients, requests, mix, verify, started)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let stats = server_stats(addr, protocol);

    let ok: usize = outcomes.iter().map(|o| o.ok).sum();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let retries: usize = outcomes.iter().map(|o| o.retries).sum();
    let mode = outcomes.first().map(|o| o.mode).unwrap_or("json");
    let mut wire = WireCounts::default();
    for outcome in &outcomes {
        wire.absorb(&outcome.counts);
    }
    let mut latencies: Vec<u64> =
        outcomes.iter().flat_map(|o| o.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let unverified: Vec<u64> =
        outcomes.iter().flat_map(|o| o.unverified_finish_us.iter().copied()).collect();
    let unverified_throughput = match unverified.iter().max() {
        Some(&last) if last > 0 => unverified.len() as f64 / (last as f64 / 1e6),
        _ => ok as f64 / wall_secs.max(1e-9),
    };
    Pass {
        ok,
        errors,
        retries,
        wall_secs,
        throughput: ok as f64 / wall_secs.max(1e-9),
        unverified_throughput,
        p50: percentile_ms(&latencies, 50.0),
        p95: percentile_ms(&latencies, 95.0),
        p99: percentile_ms(&latencies, 99.0),
        wire,
        mode,
        stats,
    }
}

fn in_process_server() -> (Server, String) {
    let config = ServerConfig { workers: 2, queue_capacity: 8, ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn main() {
    let quick = has_flag("--quick");
    let clients: usize = flag_value("--clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(if quick { 3 } else { 4 })
        .max(1);
    let requests: usize = flag_value("--requests")
        .map(|v| v.parse().expect("--requests takes a number"))
        .unwrap_or(if quick { 12 } else { 36 })
        .max(clients);
    // Default depth 1: this mix repeats (bench, knobs) pairs, and
    // pipelining duplicates-in-flight defeats the content-addressed
    // cache (every copy of a request misses until the first completes).
    // Deeper windows are for cache-cold mixes and the CI pipelining
    // smoke; the win for this mix comes from connection reuse + nodelay.
    let pipeline: usize = flag_value("--pipeline")
        .map(|v| v.parse().expect("--pipeline takes a number"))
        .unwrap_or(1)
        .max(1);
    let protocol = match flag_value("--protocol") {
        None => Protocol::Auto,
        Some(raw) => Protocol::parse(&raw).expect("--protocol takes json, binary or auto"),
    };
    let verify_permille: usize = flag_value("--verify-mix")
        .map(|v| {
            let f: f64 = v.parse().expect("--verify-mix takes a fraction in 0..=1");
            assert!((0.0..=1.0).contains(&f), "--verify-mix takes a fraction in 0..=1");
            (f * 1000.0).round() as usize
        })
        .unwrap_or(0);
    let verify_mode: &'static str = match flag_value("--verify-mode").as_deref() {
        None | Some("sample") => "sample",
        Some("full") => "full",
        Some(other) => panic!("--verify-mode takes sample or full, not '{other}'"),
    };
    let pr = flag_value("--pr").unwrap_or_else(|| "PR3-loadgen".to_string());

    if has_flag("--warm-mix") {
        assert!(
            flag_value("--addr").is_none(),
            "--warm-mix compares against a cold fresh server and needs the \
             in-process one; drop --addr"
        );
        let warm_pr = flag_value("--pr").unwrap_or_else(|| "PR9-warmstart".to_string());
        run_warm_comparison(protocol, &warm_pr);
        return;
    }

    if has_flag("--mem-mix") {
        assert!(
            flag_value("--addr").is_none(),
            "--mem-mix certifies the M-move ablation against fresh in-process \
             servers; drop --addr"
        );
        let mem_pr = flag_value("--pr").unwrap_or_else(|| "PR10-memory".to_string());
        run_mem_comparison(clients, requests, pipeline, protocol, &mem_pr);
        return;
    }

    if verify_permille > 0 {
        assert!(
            flag_value("--addr").is_none(),
            "--verify-mix measures a baseline pass against a fresh server and \
             needs the in-process one; drop --addr"
        );
        let verify = VerifySpec { permille: verify_permille, mode: verify_mode, send: true };
        run_verify_comparison(clients, requests, pipeline, protocol, verify, &pr);
        return;
    }

    let mix = SCALAR_MIX;
    // In-process server unless aimed at an external one. A small queue
    // relative to the client count keeps backpressure observable.
    let (server, addr) = match flag_value("--addr") {
        Some(addr) => (None, addr),
        None => {
            let (server, addr) = in_process_server();
            (Some(server), addr)
        }
    };

    let pass = run_pass(&addr, protocol, clients, requests, pipeline, mix, VerifySpec::OFF, false);
    if let Some(server) = server {
        server.shutdown();
    }

    let cache_hits = stat(&pass.stats, &["cache", "hits"]);
    let cache_misses = stat(&pass.stats, &["cache", "misses"]);
    let completed = stat(&pass.stats, &["completed"]);
    let rejected = stat(&pass.stats, &["rejected"]);
    let (ok, errors, retries, mode) = (pass.ok, pass.errors, pass.retries, pass.mode);
    let wall_secs = pass.wall_secs;
    let throughput = pass.throughput;
    let (p50, p95, p99) = (pass.p50, pass.p95, pass.p99);
    let wire = pass.wire;
    let messages = wire.frames_in + wire.frames_out;
    let bytes_per_message = if messages == 0 {
        0.0
    } else {
        (wire.bytes_in + wire.bytes_out) as f64 / messages as f64
    };
    let messages_per_sec = messages as f64 / wall_secs.max(1e-9);

    assert_eq!(ok + errors, requests, "every request must resolve");
    assert_eq!(errors, 0, "the fixed mix contains no failing requests");

    println!(
        "loadgen: {requests} requests, {clients} clients, pipeline {pipeline} ({mode} wire) -> \
         {ok} ok, {errors} errors, {retries} backpressure retries in {wall_secs:.2}s \
         ({throughput:.1} req/s)"
    );
    println!(
        "         server: {completed} jobs completed, {rejected} rejected, cache {cache_hits} \
         hits / {cache_misses} misses"
    );
    println!(
        "         wire: {} B in, {} B out, {messages} messages ({bytes_per_message:.0} B/msg, \
         {messages_per_sec:.1} msg/s)",
        wire.bytes_in, wire.bytes_out
    );
    println!("         latency p50={p50:.1}ms p95={p95:.1}ms p99={p99:.1}ms");

    if has_flag("--no-write") {
        return;
    }
    let row = format!(
        "{{\"name\": \"loadgen-mix1\", \"mode\": \"service\", \"protocol\": \"{mode}\", \
         \"pipeline\": {pipeline}, \"host_cores\": {cores}, \"clients\": {clients}, \
         \"requests\": {requests}, \"ok\": {ok}, \"backpressure_retries\": {retries}, \
         \"jobs_completed\": {completed}, \"cache_hits\": {cache_hits}, \
         \"cache_misses\": {cache_misses}, \"wall_time_sec\": {wall_secs:.4}, \
         \"throughput_rps\": {throughput:.2}, \"bytes_per_message\": {bytes_per_message:.1}, \
         \"messages_per_sec\": {messages_per_sec:.1}, \"p50_ms\": {p50:.1}, \
         \"p95_ms\": {p95:.1}, \"p99_ms\": {p99:.1}}}",
        cores = salsa_bench::host_cores(),
    );
    write_row(&pr, "loadgen-mix1", mode, pipeline, row);
}

/// The `--verify-mix` comparison: a verification-off baseline and the
/// mixed pass, each against a fresh in-process server warmed with one
/// request per mix entry (under its own verify spec, so the mixed
/// side's first-time certificates land in the warm-up), reported as one
/// `loadgen-verify` row.
fn run_verify_comparison(
    clients: usize,
    requests: usize,
    pipeline: usize,
    protocol: Protocol,
    verify: VerifySpec,
    pr: &str,
) {
    // Alternate baseline/mixed passes and keep each side's median (by
    // its lane throughput): single passes on a small box are noisy, and
    // interleaving spreads ambient jitter evenly over both sides.
    let repeats: usize = flag_value("--repeats")
        .map(|v| v.parse().expect("--repeats takes a number"))
        .unwrap_or(3)
        .max(1);
    let mut baselines = Vec::new();
    let mut passes = Vec::new();
    for _ in 0..repeats {
        let (server, addr) = in_process_server();
        baselines.push(run_pass(
            &addr,
            protocol,
            clients,
            requests,
            pipeline,
            SCALAR_MIX,
            verify.baseline_of(),
            true,
        ));
        server.shutdown();
        let (server, addr) = in_process_server();
        passes.push(run_pass(&addr, protocol, clients, requests, pipeline, SCALAR_MIX, verify, true));
        server.shutdown();
    }
    for (label, p) in baselines
        .iter()
        .map(|p| ("baseline", p))
        .chain(passes.iter().map(|p| ("verify", p)))
    {
        assert_eq!(p.ok + p.errors, requests, "{label}: every request must resolve");
        assert_eq!(p.errors, 0, "{label}: the fixed mix contains no failing requests");
    }
    let median = |mut v: Vec<Pass>| -> Pass {
        v.sort_by(|a, b| {
            a.unverified_throughput.partial_cmp(&b.unverified_throughput).expect("finite")
        });
        v.remove(v.len() / 2)
    };
    let baseline = median(baselines);
    let pass = median(passes);

    let verify_fraction = verify.permille as f64 / 1000.0;
    let verified = stat(&pass.stats, &["verifier", "verified"]);
    let verify_failed = stat(&pass.stats, &["verifier", "failed"]);
    let vcache_hits = stat(&pass.stats, &["verifier", "cache", "hits"]);
    let vcache_misses = stat(&pass.stats, &["verifier", "cache", "misses"]);
    let v50 = statf(&pass.stats, &["verifier", "latency_ms", "p50"]);
    let v95 = statf(&pass.stats, &["verifier", "latency_ms", "p95"]);
    let v99 = statf(&pass.stats, &["verifier", "latency_ms", "p99"]);
    // The lane-isolation metric: requests that did NOT ask for a
    // certificate, at the pace they completed, against the same pace
    // with verification off entirely. Verified requests pay for their
    // own certificates; unverified ones must not.
    let ratio = pass.unverified_throughput / baseline.unverified_throughput.max(1e-9);
    let e2e_ratio = pass.throughput / baseline.throughput.max(1e-9);
    let mode = pass.mode;

    assert_eq!(verify_failed, 0, "certified jobs must not refute their own reports");
    assert!(verified > 0, "the mixed pass must actually verify something");

    println!(
        "loadgen verify-mix {verify_fraction:.2} ({vmode}): {requests} requests, \
         {clients} clients, pipeline {pipeline} ({mode} wire)",
        vmode = verify.mode,
    );
    println!(
        "         baseline (verify off): {} ok in {:.2}s ({:.1} req/s, p95 {:.1}ms)",
        baseline.ok, baseline.wall_secs, baseline.throughput, baseline.p95
    );
    println!(
        "         mixed: {} ok in {:.2}s ({:.1} req/s end-to-end, {:.1}% of baseline)",
        pass.ok,
        pass.wall_secs,
        pass.throughput,
        e2e_ratio * 100.0
    );
    println!(
        "         allocation lane (unverified share): {:.1} req/s vs {:.1} baseline \
         -> {:.1}% kept",
        pass.unverified_throughput,
        baseline.unverified_throughput,
        ratio * 100.0
    );
    println!(
        "         verifier lane: {verified} certified ({vcache_hits} verdict-cache hits / \
         {vcache_misses} misses), verify p50={v50:.1}ms p95={v95:.1}ms p99={v99:.1}ms"
    );

    if has_flag("--no-write") {
        return;
    }
    let row = format!(
        "{{\"name\": \"loadgen-verify\", \"mode\": \"service\", \"protocol\": \"{mode}\", \
         \"pipeline\": {pipeline}, \"host_cores\": {cores}, \"clients\": {clients}, \
         \"requests\": {requests}, \
         \"repeats\": {repeats}, \"verify_fraction\": {verify_fraction:.3}, \"verify_mode\": \"{vmode}\", \
         \"ok\": {ok}, \
         \"baseline_throughput_rps\": {base_tp:.2}, \"throughput_rps\": {tp:.2}, \
         \"end_to_end_ratio\": {e2e_ratio:.3}, \
         \"alloc_lane_throughput_rps\": {lane_tp:.2}, \
         \"alloc_lane_baseline_rps\": {lane_base:.2}, \"alloc_lane_ratio\": {ratio:.3}, \
         \"verified\": {verified}, \
         \"verdict_cache_hits\": {vcache_hits}, \"verdict_cache_misses\": {vcache_misses}, \
         \"p95_ms\": {p95:.1}, \"verify_p50_ms\": {v50:.1}, \"verify_p95_ms\": {v95:.1}, \
         \"verify_p99_ms\": {v99:.1}}}",
        cores = salsa_bench::host_cores(),
        vmode = verify.mode,
        ok = pass.ok,
        base_tp = baseline.throughput,
        tp = pass.throughput,
        lane_tp = pass.unverified_throughput,
        lane_base = baseline.unverified_throughput,
        p95 = pass.p95,
    );
    write_row(pr, "loadgen-verify", mode, pipeline, row);
}

/// The `--mem-mix` comparison: the ISSUE 10 memory-binding acceptance run.
///
/// A throughput pass drives the memory-heavy mix (fir8a + mm2, with
/// repeats for cache hits) against an in-process server; then each
/// memory benchmark is allocated twice over a fresh server — M moves on
/// with `verify: full` (the certificate the row records) and the M-off
/// ablation (`mem_moves: false`, banks frozen at the initial round-robin
/// binding). The row proves the tentpole claim: the extended move family
/// reaches a strictly lower certified cost on both benchmarks under the
/// same budget.
fn run_mem_comparison(
    clients: usize,
    requests: usize,
    pipeline: usize,
    protocol: Protocol,
    pr: &str,
) {
    let (server, addr) = in_process_server();
    let pass =
        run_pass(&addr, protocol, clients, requests, pipeline, MEM_MIX, VerifySpec::OFF, false);
    server.shutdown();
    assert_eq!(pass.ok + pass.errors, requests, "every request must resolve");
    assert_eq!(pass.errors, 0, "the memory mix contains no failing requests");

    let call_ok = |conn: &mut Connection, request: &Json| -> Json {
        loop {
            let reply = conn.call(request).expect("mem-mix request");
            match reply.get("status").and_then(Json::as_str) {
                Some("rejected") => std::thread::sleep(std::time::Duration::from_millis(
                    reply.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(50),
                )),
                Some("ok") => return reply,
                other => panic!("mem-mix: {other:?}: {}", reply.to_string_compact()),
            }
        }
    };
    let report_u64 = |reply: &Json, path: &[&str]| -> u64 {
        let mut node = reply.get("report").unwrap_or(&Json::Null);
        for key in path {
            node = node.get(key).unwrap_or(&Json::Null);
        }
        node.as_u64().unwrap_or(0)
    };

    // The certified ablation runs against one fresh server: the knobs
    // differ so the cache keys differ (a memory job never aliases its
    // own ablation), and a shared server keeps the pass self-contained.
    let (server, addr) = in_process_server();
    let mut conn = Connection::connect(&addr, protocol).expect("connect mem server");
    let mode = conn.mode_name();
    let mut rows = Vec::new();
    for bench in ["fir8a", "mm2"] {
        let base = vec![
            ("cmd", Json::Str("allocate".into())),
            ("bench", Json::Str(bench.into())),
            ("seed", Json::Int(7)),
            ("restarts", Json::Int(2)),
            ("threads", Json::Int(1)),
            ("timeout_ms", Json::Int(120_000)),
        ];
        let mut on_request = base.clone();
        on_request.push(("verify", Json::Str("full".into())));
        let on = call_ok(&mut conn, &Json::obj(on_request));
        let mut off_request = base;
        off_request.push(("mem_moves", Json::Bool(false)));
        let off = call_ok(&mut conn, &Json::obj(off_request));

        let cost_on = report_u64(&on, &["cost"]);
        let cost_off = report_u64(&off, &["cost"]);
        let banks_on = report_u64(&on, &["breakdown", "mem_banks"]);
        let banks_off = report_u64(&off, &["breakdown", "mem_banks"]);
        let verdict = on
            .get("report")
            .and_then(|r| r.get("certificate"))
            .and_then(|c| c.get("verdict"))
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string();
        assert_eq!(verdict, "certified", "{bench}: the M-on result must pass verify: full");
        assert!(
            cost_on < cost_off,
            "{bench}: M moves must strictly beat the frozen-bank ablation \
             (on={cost_on} off={cost_off})"
        );
        rows.push((bench, cost_on, cost_off, banks_on, banks_off, verdict));
    }
    server.shutdown();

    println!(
        "loadgen mem-mix ({mode} wire): {requests} requests, {clients} clients, \
         pipeline {pipeline} -> {ok} ok in {wall:.2}s ({tp:.1} req/s, p99 {p99:.1}ms)",
        ok = pass.ok,
        wall = pass.wall_secs,
        tp = pass.throughput,
        p99 = pass.p99,
    );
    for (bench, cost_on, cost_off, banks_on, banks_off, verdict) in &rows {
        println!(
            "         {bench}: M-on cost={cost_on} ({banks_on} banks, {verdict}) vs \
             M-off cost={cost_off} ({banks_off} banks) -> {pct:.1}% kept",
            pct = *cost_on as f64 / (*cost_off).max(1) as f64 * 100.0,
        );
    }

    if has_flag("--no-write") {
        return;
    }
    let per_bench: Vec<String> = rows
        .iter()
        .map(|(bench, cost_on, cost_off, banks_on, banks_off, verdict)| {
            format!(
                "\"{bench}_cost\": {cost_on}, \"{bench}_cost_frozen\": {cost_off}, \
                 \"{bench}_banks\": {banks_on}, \"{bench}_banks_frozen\": {banks_off}, \
                 \"{bench}_certificate\": \"{verdict}\""
            )
        })
        .collect();
    let row = format!(
        "{{\"name\": \"loadgen-memory\", \"mode\": \"service\", \"protocol\": \"{mode}\", \
         \"pipeline\": {pipeline}, \"host_cores\": {cores}, \"clients\": {clients}, \
         \"requests\": {requests}, \"ok\": {ok}, \"backpressure_retries\": {retries}, \
         \"wall_time_sec\": {wall:.4}, \"throughput_rps\": {tp:.2}, \"p50_ms\": {p50:.1}, \
         \"p95_ms\": {p95:.1}, \"p99_ms\": {p99:.1}, {per_bench}}}",
        cores = salsa_bench::host_cores(),
        ok = pass.ok,
        retries = pass.retries,
        wall = pass.wall_secs,
        tp = pass.throughput,
        p50 = pass.p50,
        p95 = pass.p95,
        p99 = pass.p99,
        per_bench = per_bench.join(", "),
    );
    write_row(pr, "loadgen-memory", mode, pipeline, row);
}

/// The `--warm-mix` comparison: the ISSUE 9 warm-start acceptance run.
///
/// One server allocates the EWF baseline (seeding its similarity index
/// with the winner), then re-allocates a one-op variant through the
/// `reallocate` verb; a second, fresh server runs the identical variant
/// cold. All jobs share knobs and `verify: full`, so the warm report's
/// provenance and certificate are both checked, and the recorded ratio —
/// warm trials-to-best over the cold job's total trial budget — is the
/// acceptance metric (must land under 0.25).
fn run_warm_comparison(protocol: Protocol, pr: &str) {
    let variant = {
        let graph = salsa_cdfg::benchmarks::ewf();
        graph.canonical_text().replacen("= add", "= sub", 1)
    };
    let knobs: &[(&str, Json)] = &[
        ("seed", Json::Int(1)),
        ("restarts", Json::Int(2)),
        ("threads", Json::Int(1)),
        ("verify", Json::Str("full".into())),
        ("timeout_ms", Json::Int(120_000)),
    ];
    let request = |head: Vec<(&'static str, Json)>| {
        let mut fields = head;
        fields.extend(knobs.iter().map(|(k, v)| (*k, v.clone())));
        Json::obj(fields)
    };
    let call_ok = |conn: &mut Connection, request: &Json| -> Json {
        loop {
            let reply = conn.call(request).expect("warm-mix request");
            match reply.get("status").and_then(Json::as_str) {
                Some("rejected") => std::thread::sleep(std::time::Duration::from_millis(
                    reply.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(50),
                )),
                Some("ok") => return reply,
                other => panic!("warm-mix: {other:?}: {}", reply.to_string_compact()),
            }
        }
    };

    // Warm side: base job banks its winner, reallocate rides on it.
    let (server, addr) = in_process_server();
    let mut conn = Connection::connect(&addr, protocol).expect("connect warm server");
    let mode = conn.mode_name();
    let base = call_ok(
        &mut conn,
        &request(vec![("cmd", Json::Str("allocate".into())), ("bench", Json::Str("ewf".into()))]),
    );
    let base_id = base.get("id").and_then(Json::as_str).expect("base job id").to_string();
    let warm = call_ok(
        &mut conn,
        &request(vec![
            ("cmd", Json::Str("reallocate".into())),
            ("base", Json::Str(base_id.clone())),
            ("cdfg", Json::Str(variant.clone())),
        ]),
    );
    server.shutdown();

    // Cold side: the identical variant and knobs against a fresh server
    // whose seed index has never seen EWF.
    let (server, addr) = in_process_server();
    let mut conn = Connection::connect(&addr, protocol).expect("connect cold server");
    let cold = call_ok(
        &mut conn,
        &request(vec![("cmd", Json::Str("allocate".into())), ("cdfg", Json::Str(variant))]),
    );
    server.shutdown();

    let report = |reply: &Json, path: &[&str]| -> u64 {
        let mut node = reply.get("report").unwrap_or(&Json::Null);
        for key in path {
            node = node.get(key).unwrap_or(&Json::Null);
        }
        node.as_u64().unwrap_or(0)
    };
    let base_cost = report(&base, &["cost"]);
    let cold_cost = report(&cold, &["cost"]);
    let warm_cost = report(&warm, &["cost"]);
    let cold_trials = report(&cold, &["search", "trials"]);
    let cold_ttb = report(&cold, &["search", "trials_to_best"]);
    let warm_ttb = report(&warm, &["search", "trials_to_best"]);
    let ratio = warm_ttb as f64 / (cold_trials as f64).max(1.0);
    let warm_start = warm.get("report").and_then(|r| r.get("warm_start")).cloned();
    let warm_mode = warm_start
        .as_ref()
        .and_then(|w| w.get("mode"))
        .and_then(Json::as_str)
        .unwrap_or("missing")
        .to_string();
    let distance = warm_start
        .as_ref()
        .and_then(|w| w.get("distance"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let verdict = |reply: &Json| {
        reply
            .get("report")
            .and_then(|r| r.get("certificate"))
            .and_then(|c| c.get("verdict"))
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string()
    };
    let warm_verdict = verdict(&warm);
    let cold_verdict = verdict(&cold);

    assert_eq!(
        warm_start.as_ref().and_then(|w| w.get("source")).and_then(Json::as_str),
        Some(base_id.as_str()),
        "warm job must credit the base job as its seed"
    );
    assert!(cold.get("report").and_then(|r| r.get("warm_start")).is_none(), "cold twin seeded");
    assert_eq!(warm_verdict, "certified", "warm certificate must pass verify: full");
    assert_eq!(cold_verdict, "certified", "cold certificate must pass verify: full");
    assert!(warm_cost <= cold_cost, "warm ({warm_cost}) must not lose to cold ({cold_cost})");
    assert!(
        ratio < 0.25,
        "warm trials-to-best {warm_ttb} is not under 25% of the cold budget {cold_trials}"
    );

    println!("loadgen warm-mix ({mode} wire): base ewf cost={base_cost} id={base_id}");
    println!(
        "         cold variant: cost={cold_cost} in {cold_trials} trials \
         (best at trial {cold_ttb}), certificate {cold_verdict}"
    );
    println!(
        "         warm variant: cost={warm_cost}, best at trial {warm_ttb} \
         (mode {warm_mode}, sketch distance {distance}), certificate {warm_verdict}"
    );
    println!(
        "         warm reached its best in {:.1}% of the cold trial budget (target < 25%)",
        ratio * 100.0
    );

    if has_flag("--no-write") {
        return;
    }
    let row = format!(
        "{{\"name\": \"loadgen-warm\", \"mode\": \"service\", \"protocol\": \"{mode}\", \
         \"pipeline\": 1, \"host_cores\": {cores}, \"base_cost\": {base_cost}, \
         \"cold_cost\": {cold_cost}, \"warm_cost\": {warm_cost}, \
         \"cold_trials\": {cold_trials}, \"cold_trials_to_best\": {cold_ttb}, \
         \"warm_trials_to_best\": {warm_ttb}, \"trial_ratio\": {ratio:.3}, \
         \"warm_mode\": \"{warm_mode}\", \"sketch_distance\": {distance}, \
         \"certificate\": \"{warm_verdict}\"}}",
        cores = salsa_bench::host_cores(),
    );
    write_row(pr, "loadgen-warm", mode, 1, row);
}

/// Appends `row` to the `history` entry for `pr`, replacing a prior run
/// of the same configuration (same name, protocol and pipeline depth)
/// and keeping that label's other rows.
fn write_row(pr: &str, name: &str, mode: &str, pipeline: usize, row: String) {
    let existing = std::fs::read_to_string(BENCH_FILE).unwrap_or_default();
    let benchmark_rows = existing_benchmark_rows(&existing);
    let dup_marker = format!(
        "\"name\": \"{name}\", \"mode\": \"service\", \"protocol\": \"{mode}\", \
         \"pipeline\": {pipeline},"
    );
    let mut rows: Vec<String> = same_label_rows(&existing, pr)
        .into_iter()
        .filter(|prior| !prior.contains(&dup_marker))
        .collect();
    rows.push(row);
    let mut history = prior_history(&existing, pr);
    history.push(history_entry(pr, &rows));
    let json = render_bench_file(&benchmark_rows, &history);
    std::fs::write(BENCH_FILE, &json).unwrap_or_else(|e| panic!("writing {BENCH_FILE}: {e}"));
    println!("wrote {BENCH_FILE}");
}
