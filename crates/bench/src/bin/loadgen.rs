//! Load generator for the allocation service: drives a fixed request mix
//! against `salsa-serve` over real sockets with several concurrent
//! clients, measures throughput and latency percentiles, and appends the
//! results to the `history` array of `BENCH_alloc.json` (schema in
//! EXPERIMENTS.md).
//!
//! Each client holds **one** connection for its whole share of the run
//! and keeps up to `--pipeline` requests in flight on it, paired to
//! responses by correlation id (binary protocol) or strict request order
//! (JSON lines). `--protocol` picks the wire encoding; the default
//! `auto` negotiates binary frames when the server speaks them.
//!
//! By default an in-process server is spun up on a loopback port so the
//! run is self-contained; pass `--addr HOST:PORT` to aim at an external
//! `salsa-hls serve` instead (the external server's stats are still read
//! over the wire).
//!
//! The mix deliberately repeats (benchmark, knobs) pairs so the
//! content-addressed cache sees real hits — the measured throughput is
//! the *service's*, cache included, which is the number an operator cares
//! about.
//!
//! Usage: `cargo run -p salsa-bench --bin loadgen --release --
//! [--quick] [--clients N] [--requests N] [--pipeline N]
//! [--protocol json|binary|auto] [--addr HOST:PORT] [--pr LABEL]
//! [--no-write]`

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use salsa_bench::jsonstore::{
    existing_benchmark_rows, history_entry, prior_history, render_bench_file, same_label_rows,
    BENCH_FILE,
};
use salsa_serve::stats::percentile_ms;
use salsa_serve::{Json, Server, ServerConfig};
use salsa_wire::{Backoff, Connection, Protocol, WireCounts};

/// The fixed request mix, cycled across all requests: (bench, seed,
/// restarts). Repeated tuples are cache hits after their first
/// completion; `hal`/`fir` exercise the alias path.
const MIX: &[(&str, u64, u64)] = &[
    ("ewf", 1, 2),
    ("dct", 1, 1),
    ("hal", 2, 2),
    ("ewf", 1, 2), // repeat → cache hit
    ("fir", 3, 1),
    ("dct", 1, 1), // repeat → cache hit
];

struct ClientOutcome {
    ok: usize,
    errors: usize,
    retries: usize,
    latencies_us: Vec<u64>,
    counts: WireCounts,
    mode: &'static str,
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn request_json(mix_index: usize) -> Json {
    let (bench, seed, restarts) = MIX[mix_index % MIX.len()];
    Json::obj(vec![
        ("cmd", Json::Str("allocate".into())),
        ("bench", Json::Str(bench.into())),
        ("seed", Json::Int(seed as i64)),
        ("restarts", Json::Int(restarts as i64)),
        ("threads", Json::Int(1)),
        ("timeout_ms", Json::Int(120_000)),
    ])
}

/// One client: its share of the request sequence over a single reused
/// connection, keeping up to `pipeline` requests in flight and retrying
/// backpressure rejections after the server's hint.
fn client(
    addr: &str,
    protocol: Protocol,
    pipeline: usize,
    client_id: usize,
    clients: usize,
    total: usize,
) -> ClientOutcome {
    let mut conn = Connection::connect(addr, protocol).expect("connect");
    let mut outcome = ClientOutcome {
        ok: 0,
        errors: 0,
        retries: 0,
        latencies_us: Vec::new(),
        counts: WireCounts::default(),
        mode: conn.mode_name(),
    };
    // Jittered exponential backoff for backpressure, seeded per client so
    // runs are reproducible but clients never retry in lockstep. The
    // server's `retry_after_ms` hint stays a floor: never come back early.
    let mut backoff = Backoff::new(
        0x10ad_6e4e ^ client_id as u64,
        std::time::Duration::from_millis(10),
        std::time::Duration::from_secs(2),
    );
    let mut todo: VecDeque<usize> = (client_id..total).step_by(clients).collect();
    // Correlation id → (mix index, first-send time). Latency spans the
    // whole request lifetime including backpressure retries, as before.
    let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
    while !todo.is_empty() || !in_flight.is_empty() {
        while in_flight.len() < pipeline.max(1) {
            let Some(request_no) = todo.pop_front() else { break };
            let started = Instant::now();
            let id = conn.send(&request_json(request_no)).expect("send");
            in_flight.insert(id, (request_no, started));
        }
        let (id, response) = conn.recv_any().expect("receive");
        let (request_no, started) = in_flight.remove(&id).expect("known correlation id");
        match response.get("status").and_then(Json::as_str) {
            Some("rejected") => {
                outcome.retries += 1;
                let hint = response.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(100);
                let delay = backoff.next_delay().max(std::time::Duration::from_millis(hint));
                // Sleeping stalls this client's whole window, which is
                // the point: backpressure means the server is saturated.
                std::thread::sleep(delay);
                let id = conn.send(&request_json(request_no)).expect("resend");
                in_flight.insert(id, (request_no, started));
            }
            Some("ok") => {
                outcome.ok += 1;
                backoff.reset();
                outcome
                    .latencies_us
                    .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            _ => {
                outcome.errors += 1;
                outcome
                    .latencies_us
                    .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
        }
    }
    outcome.counts = conn.counts();
    outcome
}

fn server_stats(addr: &str, protocol: Protocol) -> Json {
    let mut conn = Connection::connect(addr, protocol).expect("connect for stats");
    let reply = conn
        .call(&Json::obj(vec![("cmd", Json::Str("stats".into()))]))
        .expect("stats");
    reply.get("stats").expect("stats body").clone()
}

fn stat(stats: &Json, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        node = node.get(key).unwrap_or(&Json::Null);
    }
    node.as_u64().unwrap_or(0)
}

fn main() {
    let quick = has_flag("--quick");
    let clients: usize = flag_value("--clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(if quick { 3 } else { 4 })
        .max(1);
    let requests: usize = flag_value("--requests")
        .map(|v| v.parse().expect("--requests takes a number"))
        .unwrap_or(if quick { 12 } else { 36 })
        .max(clients);
    // Default depth 1: this mix repeats (bench, knobs) pairs, and
    // pipelining duplicates-in-flight defeats the content-addressed
    // cache (every copy of a request misses until the first completes).
    // Deeper windows are for cache-cold mixes and the CI pipelining
    // smoke; the win for this mix comes from connection reuse + nodelay.
    let pipeline: usize = flag_value("--pipeline")
        .map(|v| v.parse().expect("--pipeline takes a number"))
        .unwrap_or(1)
        .max(1);
    let protocol = match flag_value("--protocol") {
        None => Protocol::Auto,
        Some(raw) => Protocol::parse(&raw).expect("--protocol takes json, binary or auto"),
    };
    let pr = flag_value("--pr").unwrap_or_else(|| "PR3-loadgen".to_string());

    // In-process server unless aimed at an external one. A small queue
    // relative to the client count keeps backpressure observable.
    let (server, addr) = match flag_value("--addr") {
        Some(addr) => (None, addr),
        None => {
            let config = ServerConfig { workers: 2, queue_capacity: 8, ..ServerConfig::default() };
            let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
            let addr = server.local_addr().to_string();
            (Some(server), addr)
        }
    };

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let handles: Vec<_> = (0..clients)
            .map(|id| scope.spawn(move || client(addr, protocol, pipeline, id, clients, requests)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let stats = server_stats(&addr, protocol);
    let cache_hits = stat(&stats, &["cache", "hits"]);
    let cache_misses = stat(&stats, &["cache", "misses"]);
    let completed = stat(&stats, &["completed"]);
    let rejected = stat(&stats, &["rejected"]);

    if let Some(server) = server {
        server.shutdown();
    }

    let ok: usize = outcomes.iter().map(|o| o.ok).sum();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let retries: usize = outcomes.iter().map(|o| o.retries).sum();
    let mode = outcomes.first().map(|o| o.mode).unwrap_or("json");
    let mut wire = WireCounts::default();
    for outcome in &outcomes {
        wire.absorb(&outcome.counts);
    }
    let messages = wire.frames_in + wire.frames_out;
    let bytes_per_message = if messages == 0 {
        0.0
    } else {
        (wire.bytes_in + wire.bytes_out) as f64 / messages as f64
    };
    let messages_per_sec = messages as f64 / wall_secs.max(1e-9);
    let mut latencies: Vec<u64> =
        outcomes.iter().flat_map(|o| o.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let (p50, p95, p99) = (
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 95.0),
        percentile_ms(&latencies, 99.0),
    );
    let throughput = ok as f64 / wall_secs.max(1e-9);

    assert_eq!(ok + errors, requests, "every request must resolve");
    assert_eq!(errors, 0, "the fixed mix contains no failing requests");

    println!(
        "loadgen: {requests} requests, {clients} clients, pipeline {pipeline} ({mode} wire) -> \
         {ok} ok, {errors} errors, {retries} backpressure retries in {wall_secs:.2}s \
         ({throughput:.1} req/s)"
    );
    println!(
        "         server: {completed} jobs completed, {rejected} rejected, cache {cache_hits} \
         hits / {cache_misses} misses"
    );
    println!(
        "         wire: {} B in, {} B out, {messages} messages ({bytes_per_message:.0} B/msg, \
         {messages_per_sec:.1} msg/s)",
        wire.bytes_in, wire.bytes_out
    );
    println!("         latency p50={p50:.1}ms p95={p95:.1}ms p99={p99:.1}ms");

    if has_flag("--no-write") {
        return;
    }
    let row = format!(
        "{{\"name\": \"loadgen-mix1\", \"mode\": \"service\", \"protocol\": \"{mode}\", \
         \"pipeline\": {pipeline}, \"clients\": {clients}, \
         \"requests\": {requests}, \"ok\": {ok}, \"backpressure_retries\": {retries}, \
         \"jobs_completed\": {completed}, \"cache_hits\": {cache_hits}, \
         \"cache_misses\": {cache_misses}, \"wall_time_sec\": {wall_secs:.4}, \
         \"throughput_rps\": {throughput:.2}, \"bytes_per_message\": {bytes_per_message:.1}, \
         \"messages_per_sec\": {messages_per_sec:.1}, \"p50_ms\": {p50:.1}, \
         \"p95_ms\": {p95:.1}, \"p99_ms\": {p99:.1}}}"
    );
    let existing = std::fs::read_to_string(BENCH_FILE).unwrap_or_default();
    let benchmark_rows = existing_benchmark_rows(&existing);
    // Merge into the label: keep the entry's other rows (e.g. the
    // trajectory rows bench_trajectory wrote under the same PR label),
    // replacing only a prior run of this same loadgen configuration.
    let dup_marker = format!("\"name\": \"loadgen-mix1\", \"mode\": \"service\", \"protocol\": \"{mode}\", \"pipeline\": {pipeline},");
    let mut rows: Vec<String> = same_label_rows(&existing, &pr)
        .into_iter()
        .filter(|prior| !prior.contains(&dup_marker))
        .collect();
    rows.push(row);
    let mut history = prior_history(&existing, &pr);
    history.push(history_entry(&pr, &rows));
    let json = render_bench_file(&benchmark_rows, &history);
    std::fs::write(BENCH_FILE, &json).unwrap_or_else(|e| panic!("writing {BENCH_FILE}: {e}"));
    println!("wrote {BENCH_FILE}");
}
