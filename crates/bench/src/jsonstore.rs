//! Reading and rewriting `BENCH_alloc.json` at the repository root — the
//! append-only performance trail shared by `bench_trajectory` and
//! `loadgen`.
//!
//! The file carries two sections (schema documented in EXPERIMENTS.md):
//!
//! * `"benchmarks"` — the latest flat trajectory rows (overwritten by
//!   `bench_trajectory`, preserved untouched by everything else);
//! * `"history"` — one entry per `--pr` label, appended across runs.
//!   Re-running with an existing label replaces that label's entry.
//!
//! The scanners are hand-rolled (the workspace deliberately has no JSON
//! dependency): brace/bracket depth plus string/escape state, which is
//! all the shapes this file ever contains.

use std::fmt::Write as _;

/// The absolute path of `BENCH_alloc.json`: the repo root is two levels
/// above this crate's manifest regardless of the invocation directory.
pub const BENCH_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alloc.json");

/// Splits the top-level `{...}` objects out of a JSON array body.
pub fn split_objects(body: &str) -> Vec<String> {
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        objects.push(body[s..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    objects
}

/// The body (between `[` and its matching `]`) of a named top-level array
/// in `json`, if present.
pub fn array_body<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let open = at + json[at..].find('[')?;
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in json[open..].char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Prior history entries to carry forward: the existing `"history"`
/// array's entries minus any with the current PR label, or — for a file
/// from before the history schema — its flat `"benchmarks"` rows wrapped
/// as a single `"pre-history"` entry.
pub fn prior_history(existing: &str, pr: &str) -> Vec<String> {
    if let Some(body) = array_body(existing, "history") {
        let marker = format!("\"pr\": \"{pr}\"");
        return split_objects(body)
            .into_iter()
            .filter(|entry| !entry.contains(&marker))
            .collect();
    }
    if let Some(body) = array_body(existing, "benchmarks") {
        let rows = split_objects(body);
        if !rows.is_empty() {
            let mut entry = String::from("{\n      \"pr\": \"pre-history\",\n      \"entries\": [\n");
            for (i, row) in rows.iter().enumerate() {
                let _ = write!(entry, "        {row}");
                entry.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
            }
            entry.push_str("      ]\n    }");
            return vec![entry];
        }
    }
    Vec::new()
}

/// The existing flat `"benchmarks"` rows, for writers (like `loadgen`)
/// that append history without regenerating the trajectory rows.
pub fn existing_benchmark_rows(existing: &str) -> Vec<String> {
    array_body(existing, "benchmarks").map(split_objects).unwrap_or_default()
}

/// The flat `"benchmarks"` block derived from one history entry: its
/// sequential rows, verbatim (rows without a `"mode"` field — the
/// pre-history schema — count as sequential). `bench_trajectory` renders
/// the block from the entry it just appended, so the flat section is
/// always a projection of the newest history entry and can never drift
/// out of step with it.
pub fn latest_flat_rows(newest_entry: &str) -> Vec<String> {
    let Some(body) = array_body(newest_entry, "entries") else {
        return Vec::new();
    };
    split_objects(body)
        .into_iter()
        .filter(|row| row.contains("\"mode\": \"sequential\"") || !row.contains("\"mode\""))
        .collect()
}

/// The rows already inside the history entry labelled `pr`, so a second
/// writer (e.g. `loadgen` after `bench_trajectory`) can merge its rows
/// into the shared label instead of clobbering the entry
/// ([`prior_history`] drops the same-label entry wholesale).
pub fn same_label_rows(existing: &str, pr: &str) -> Vec<String> {
    let Some(body) = array_body(existing, "history") else {
        return Vec::new();
    };
    let marker = format!("\"pr\": \"{pr}\"");
    split_objects(body)
        .into_iter()
        .find(|entry| entry.contains(&marker))
        .and_then(|entry| array_body(&entry, "entries").map(split_objects))
        .unwrap_or_default()
}

/// Wraps per-run row objects into one labelled history entry.
pub fn history_entry(pr: &str, rows: &[String]) -> String {
    let mut entry = format!("{{\n      \"pr\": \"{pr}\",\n      \"entries\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(entry, "        {row}");
        entry.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    entry.push_str("      ]\n    }");
    entry
}

/// Renders the whole file from its two sections.
pub fn render_bench_file(benchmark_rows: &[String], history: &[String]) -> String {
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, row) in benchmark_rows.iter().enumerate() {
        let _ = write!(json, "    {row}");
        json.push_str(if i + 1 < benchmark_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let _ = write!(json, "    {entry}");
        json.push_str(if i + 1 < history.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_history_and_replaces_same_label() {
        let first = render_bench_file(
            &["{\"name\": \"a\", \"cost\": 1}".to_string()],
            &[history_entry("PRX", &["{\"name\": \"a\", \"cost\": 1}".to_string()])],
        );
        // Same label: replaced, not duplicated.
        let replaced = prior_history(&first, "PRX");
        assert!(replaced.is_empty());
        // Different label: carried forward.
        let carried = prior_history(&first, "PRY");
        assert_eq!(carried.len(), 1);
        assert!(carried[0].contains("\"pr\": \"PRX\""));
        // Benchmarks rows survive for non-trajectory writers.
        assert_eq!(existing_benchmark_rows(&first).len(), 1);
    }

    #[test]
    fn same_label_rows_recovers_the_entry_for_merging() {
        let file = render_bench_file(
            &[],
            &[history_entry(
                "PRM",
                &[
                    "{\"name\": \"a\", \"cost\": 1}".to_string(),
                    "{\"name\": \"b\", \"cost\": 2}".to_string(),
                ],
            )],
        );
        let rows = same_label_rows(&file, "PRM");
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("\"a\""));
        assert!(same_label_rows(&file, "PRQ").is_empty());
    }

    #[test]
    fn scanner_ignores_braces_inside_strings() {
        let body = r#"{"name": "tricky{]}", "x": 1}, {"name": "b \" {", "x": 2}"#;
        let objects = split_objects(body);
        assert_eq!(objects.len(), 2);
        assert!(objects[0].contains("tricky"));
    }

    #[test]
    fn flat_block_projects_newest_entry() {
        let rows = [
            "{\"name\": \"ewf19\", \"mode\": \"sequential\", \"final_cost\": 9}".to_string(),
            "{\"name\": \"ewf19\", \"mode\": \"portfolio\", \"final_cost\": 9}".to_string(),
            "{\"name\": \"dct10\", \"mode\": \"sequential\", \"final_cost\": 8}".to_string(),
        ];
        let entry = history_entry("PRN", &rows);
        let flat = latest_flat_rows(&entry);
        assert_eq!(flat.len(), 2, "sequential rows only");
        assert_eq!(flat[0], rows[0]);
        assert_eq!(flat[1], rows[2]);
        // Pre-history rows have no mode field and count as sequential.
        let legacy = history_entry("old", &["{\"name\": \"a\", \"cost\": 1}".to_string()]);
        assert_eq!(latest_flat_rows(&legacy).len(), 1);
    }

    #[test]
    fn pre_history_files_migrate() {
        let legacy = "{\n  \"benchmarks\": [\n    {\"name\": \"ewf19\", \"cost\": 5}\n  ]\n}\n";
        let migrated = prior_history(legacy, "PRZ");
        assert_eq!(migrated.len(), 1);
        assert!(migrated[0].contains("\"pr\": \"pre-history\""));
        assert!(migrated[0].contains("ewf19"));
    }
}
