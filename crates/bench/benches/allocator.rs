//! End-to-end allocation benchmarks (the paper reports 8-10 CPU minutes
//! per EWF allocation on a Sun Sparcstation 1; these measure the same
//! full pipeline on modern hardware).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use salsa_alloc::{initial_allocation, AllocContext, Allocator, ImproveConfig, MoveSet};
use salsa_cdfg::benchmarks::{diffeq, ewf, paper_example};
use salsa_datapath::Datapath;
use salsa_sched::{fds_schedule, FuLibrary};

fn quick(move_set: MoveSet) -> ImproveConfig {
    ImproveConfig {
        max_trials: 3,
        moves_per_trial: Some(400),
        move_set,
        ..ImproveConfig::default()
    }
}

fn bench_allocator(c: &mut Criterion) {
    let library = FuLibrary::standard();

    // Constructive initial allocation alone.
    let ewf_graph = ewf();
    let ewf_schedule = fds_schedule(&ewf_graph, &library, 17).unwrap();
    let pool = Datapath::new(
        &ewf_schedule.fu_demand(&ewf_graph, &library),
        ewf_schedule.register_demand(&ewf_graph, &library),
    );
    let ctx = AllocContext::new(&ewf_graph, &ewf_schedule, &library, pool).unwrap();
    c.bench_function("initial_allocation/ewf17", |b| {
        b.iter(|| initial_allocation(black_box(&ctx)))
    });

    // Full pipeline on the small designs.
    let mut group = c.benchmark_group("allocate");
    group.sample_size(10);
    let example = paper_example();
    let example_schedule = fds_schedule(&example, &library, 4).unwrap();
    group.bench_function("paper_example/salsa", |b| {
        b.iter(|| {
            Allocator::new(&example, &example_schedule, &library)
                .seed(1)
                .config(quick(MoveSet::full()))
                .run()
                .unwrap()
        })
    });
    let deq = diffeq();
    let deq_schedule = fds_schedule(&deq, &library, 8).unwrap();
    group.bench_function("diffeq/salsa", |b| {
        b.iter(|| {
            Allocator::new(&deq, &deq_schedule, &library)
                .seed(1)
                .config(quick(MoveSet::full()))
                .run()
                .unwrap()
        })
    });
    group.bench_function("diffeq/traditional", |b| {
        b.iter(|| {
            Allocator::new(&deq, &deq_schedule, &library)
                .seed(1)
                .config(quick(MoveSet::traditional()))
                .run()
                .unwrap()
        })
    });
    group.finish();

    // The portfolio on the same restart set, sequentially and spread over
    // worker threads: the wall-clock ratio is the realized multi-thread
    // speedup of the parallel portfolio (hardware-dependent; on a
    // single-core box the two are expected to tie).
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(&format!("ewf17_4_chains/{threads}_threads"), |b| {
            b.iter(|| {
                Allocator::new(&ewf_graph, &ewf_schedule, &library)
                    .seed(7)
                    .config(quick(MoveSet::full()))
                    .restarts(4)
                    .threads(threads)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
