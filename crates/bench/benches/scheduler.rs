//! Scheduling benchmarks: ASAP, force-directed, and list scheduling on the
//! paper's designs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use salsa_cdfg::benchmarks::{dct, ewf};
use salsa_sched::{asap, fds_schedule, list_schedule, FuClass, FuLibrary};

fn bench_scheduler(c: &mut Criterion) {
    let library = FuLibrary::standard();
    let ewf_graph = ewf();
    let dct_graph = dct();

    c.bench_function("asap/ewf", |b| {
        b.iter(|| asap(black_box(&ewf_graph), black_box(&library)))
    });

    let mut group = c.benchmark_group("fds");
    group.sample_size(20);
    group.bench_function("ewf/17", |b| {
        b.iter(|| fds_schedule(black_box(&ewf_graph), &library, 17).unwrap())
    });
    group.bench_function("ewf/21", |b| {
        b.iter(|| fds_schedule(black_box(&ewf_graph), &library, 21).unwrap())
    });
    group.bench_function("dct/8", |b| {
        b.iter(|| fds_schedule(black_box(&dct_graph), &library, 8).unwrap())
    });
    group.bench_function("dct/10", |b| {
        b.iter(|| fds_schedule(black_box(&dct_graph), &library, 10).unwrap())
    });
    group.finish();

    let limits = BTreeMap::from([(FuClass::Alu, 2), (FuClass::Mul, 2)]);
    c.bench_function("list/ewf", |b| {
        b.iter(|| list_schedule(black_box(&ewf_graph), &library, &limits).unwrap())
    });
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
