//! Move-application throughput: the paper's iterative improvement hinges
//! on cheap move evaluation ("costs are recalculated after every move",
//! §4).
//!
//! The two `accept_loop` benches run the *same* seeded move stream with
//! the same accept rule under the two mutation protocols the engine has
//! supported: the undo-journal transactions the search uses now
//! (`begin`/`commit`/`rollback`) and the snapshot protocol it replaced
//! (clone the whole binding before every move, assign it back on reject).
//! Their ratio is the per-move speedup of the transactional engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use salsa_alloc::{initial_allocation, moves, AllocContext, Binding, MoveSet};
use salsa_cdfg::benchmarks::{dct, ewf};
use salsa_cdfg::Cdfg;
use salsa_datapath::{CostWeights, Datapath};
use salsa_sched::{fds_schedule, FuLibrary, Schedule};

const MOVES_PER_ITER: usize = 100;

/// The engine's current inner loop: open a transaction per move, roll the
/// journal back on infeasible/rejected moves, commit on accept.
fn journal_loop<'a>(mut binding: Binding<'a>, mut rng: StdRng, set: &MoveSet) -> Binding<'a> {
    let weights = CostWeights::default();
    let mut current = weights.evaluate(&binding.breakdown());
    for _ in 0..MOVES_PER_ITER {
        let kind = set.pick(&mut rng);
        binding.begin();
        if !moves::try_move(&mut binding, kind, &mut rng) {
            binding.rollback();
            continue;
        }
        let after = weights.evaluate(&binding.breakdown());
        if after <= current {
            current = after;
            binding.commit();
        } else {
            binding.rollback();
        }
    }
    binding
}

/// The protocol the transactional engine replaced: clone the entire
/// binding before every attempt, assign the snapshot back to undo, and
/// recompute the cost breakdown from scratch after each applied move (the
/// incremental cost caches arrived with the transactional engine). Same
/// seed, same move stream, same accept rule as [`journal_loop`].
fn snapshot_loop<'a>(mut binding: Binding<'a>, mut rng: StdRng, set: &MoveSet) -> Binding<'a> {
    let weights = CostWeights::default();
    let mut current = weights.evaluate(&binding.recomputed_breakdown());
    for _ in 0..MOVES_PER_ITER {
        let kind = set.pick(&mut rng);
        let snapshot = binding.clone();
        if !moves::try_move(&mut binding, kind, &mut rng) {
            binding = snapshot;
            continue;
        }
        let after = weights.evaluate(&binding.recomputed_breakdown());
        if after <= current {
            current = after;
        } else {
            binding = snapshot;
        }
    }
    binding
}

fn schedule_for(graph: &Cdfg, library: &FuLibrary, steps: usize) -> Schedule {
    fds_schedule(graph, library, steps).unwrap()
}

fn bench_moves(c: &mut Criterion) {
    let library = FuLibrary::standard();
    let graph = ewf();
    let schedule = schedule_for(&graph, &library, 19);
    let pool = Datapath::new(
        &schedule.fu_demand(&graph, &library),
        schedule.register_demand(&graph, &library) + 1,
    );
    let ctx = AllocContext::new(&graph, &schedule, &library, pool).unwrap();
    let base = initial_allocation(&ctx);
    let set = MoveSet::full();

    c.bench_function("moves/100_random_on_ewf19", |b| {
        b.iter_batched(
            || (base.clone(), StdRng::seed_from_u64(7)),
            |(mut binding, mut rng)| {
                for _ in 0..MOVES_PER_ITER {
                    let kind = set.pick(&mut rng);
                    moves::try_move(&mut binding, kind, &mut rng);
                }
                binding
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("moves/accept_loop_journal_ewf19", |b| {
        b.iter_batched(
            || (base.clone(), StdRng::seed_from_u64(7)),
            |(binding, rng)| journal_loop(binding, rng, &set),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("moves/accept_loop_snapshot_ewf19", |b| {
        b.iter_batched(
            || (base.clone(), StdRng::seed_from_u64(7)),
            |(binding, rng)| snapshot_loop(binding, rng, &set),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("moves/snapshot_clone_ewf19", |b| b.iter(|| base.clone()));

    c.bench_function("moves/cost_breakdown_ewf19", |b| b.iter(|| base.breakdown()));

    // The same protocol comparison on the larger DCT design, where the
    // whole-binding snapshot is proportionally more expensive than the
    // handful of cells one move touches.
    let dct_graph = dct();
    let dct_schedule = schedule_for(&dct_graph, &library, 10);
    let dct_pool = Datapath::new(
        &dct_schedule.fu_demand(&dct_graph, &library),
        dct_schedule.register_demand(&dct_graph, &library) + 1,
    );
    let dct_ctx = AllocContext::new(&dct_graph, &dct_schedule, &library, dct_pool).unwrap();
    let dct_base = initial_allocation(&dct_ctx);

    c.bench_function("moves/accept_loop_journal_dct10", |b| {
        b.iter_batched(
            || (dct_base.clone(), StdRng::seed_from_u64(7)),
            |(binding, rng)| journal_loop(binding, rng, &set),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("moves/accept_loop_snapshot_dct10", |b| {
        b.iter_batched(
            || (dct_base.clone(), StdRng::seed_from_u64(7)),
            |(binding, rng)| snapshot_loop(binding, rng, &set),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("moves/snapshot_clone_dct10", |b| b.iter(|| dct_base.clone()));

    // Chain-pool accounting on a sustained DCT move stream: after warm-up,
    // every chain snapshot/copy-chain buffer should come from the binding's
    // arena-lite pool instead of the allocator. Printed rather than timed —
    // the claim is an allocation *count*, not a wall-clock number.
    let mut binding = dct_base.clone();
    let mut rng = StdRng::seed_from_u64(7);
    let weights = CostWeights::default();
    let mut current = weights.evaluate(&binding.breakdown());
    for _ in 0..20_000 {
        let kind = set.pick(&mut rng);
        binding.begin();
        if !moves::try_move(&mut binding, kind, &mut rng) {
            binding.rollback();
            continue;
        }
        let after = weights.evaluate(&binding.breakdown());
        if after <= current {
            current = after;
            binding.commit();
        } else {
            binding.rollback();
        }
    }
    let (reused, fresh) = binding.chain_pool_stats();
    eprintln!(
        "moves/chain_pool_dct10: 20000-move stream took {reused} pooled chain buffers, \
         {fresh} fresh allocations ({:.1}% reuse)",
        100.0 * reused as f64 / (reused + fresh).max(1) as f64
    );
    // The claim, enforced: a sustained stream recycles far more chain
    // buffers than it allocates (fresh allocations are warm-up only).
    assert!(
        reused > 10 * fresh.max(1),
        "chain-pool reuse regressed: {reused} pooled vs {fresh} fresh"
    );
}

criterion_group!(benches, bench_moves);
criterion_main!(benches);
