//! Move-application throughput: the paper's iterative improvement hinges
//! on cheap move evaluation ("costs are recalculated after every move",
//! §4) — here measured against the incremental connection matrix.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use salsa_alloc::{initial_allocation, moves, AllocContext, MoveSet};
use salsa_cdfg::benchmarks::ewf;
use salsa_datapath::Datapath;
use salsa_sched::{fds_schedule, FuLibrary};

fn bench_moves(c: &mut Criterion) {
    let library = FuLibrary::standard();
    let graph = ewf();
    let schedule = fds_schedule(&graph, &library, 19).unwrap();
    let pool = Datapath::new(
        &schedule.fu_demand(&graph, &library),
        schedule.register_demand(&graph, &library) + 1,
    );
    let ctx = AllocContext::new(&graph, &schedule, &library, pool).unwrap();
    let base = initial_allocation(&ctx);
    let set = MoveSet::full();

    c.bench_function("moves/100_random_on_ewf19", |b| {
        b.iter_batched(
            || (base.clone(), StdRng::seed_from_u64(7)),
            |(mut binding, mut rng)| {
                for _ in 0..100 {
                    let kind = set.pick(&mut rng);
                    moves::try_move(&mut binding, kind, &mut rng);
                }
                binding
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("moves/snapshot_clone_ewf19", |b| b.iter(|| base.clone()));

    c.bench_function("moves/cost_breakdown_ewf19", |b| b.iter(|| base.breakdown()));
}

criterion_group!(benches, bench_moves);
criterion_main!(benches);
