//! Per-move-kind propose/apply cost under the compiled move plan, plus
//! the allocation profile the plan promises: once the scratch buffers
//! have warmed up, *proposing* a move — candidate enumeration, ranking,
//! every RNG draw — performs no heap allocation at all.
//!
//! The counting allocator lives here rather than in `salsa-alloc`
//! because the core crate forbids unsafe code; wrapping the global
//! allocator is the one place the zero-allocation claim can be verified
//! from outside without instrumenting every call site.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use salsa_alloc::{initial_allocation, moves, AllocContext, Binding, MoveKind, MoveSet};
use salsa_cdfg::benchmarks::ewf;
use salsa_datapath::{CostWeights, Datapath};
use salsa_sched::{fds_schedule, FuLibrary};

/// Counts every allocation and reallocation that reaches the system
/// allocator. Frees are not counted: the claim under test is that the
/// steady-state propose path requests no memory, and a free without a
/// matching alloc inside the window cannot occur anyway.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs the engine's accept loop for `n` moves — the cheapest way to put
/// a binding (and its scratch buffers) into a realistic mid-search state.
fn warm_up(binding: &mut Binding<'_>, rng: &mut StdRng, set: &MoveSet, n: usize) {
    let weights = CostWeights::default();
    let mut current = weights.evaluate(&binding.breakdown());
    for _ in 0..n {
        let kind = set.pick(rng);
        binding.begin();
        if !moves::try_move(binding, kind, rng) {
            binding.rollback();
            continue;
        }
        let after = weights.evaluate(&binding.breakdown());
        if after <= current {
            current = after;
            binding.commit();
        } else {
            binding.rollback();
        }
    }
}

fn bench_plan_moves(c: &mut Criterion) {
    let library = FuLibrary::standard();
    let graph = ewf();
    let schedule = fds_schedule(&graph, &library, 19).unwrap();
    let pool = Datapath::new(
        &schedule.fu_demand(&graph, &library),
        schedule.register_demand(&graph, &library) + 1,
    );
    let ctx = AllocContext::new(&graph, &schedule, &library, pool).unwrap();
    let set = MoveSet::full();

    // One warmed-up mid-search binding shared (by clone) across all the
    // per-kind benches, so every kind is measured against the same state.
    let mut warmed = initial_allocation(&ctx);
    let mut warm_rng = StdRng::seed_from_u64(7);
    warm_up(&mut warmed, &mut warm_rng, &set, 2_000);

    for (kind, label) in MoveKind::all() {
        // Propose only: enumerate candidates, rank, draw — then discard.
        // The binding never changes, so one clone serves every iteration.
        let mut binding = warmed.clone();
        let mut rng = StdRng::seed_from_u64(11);
        c.bench_function(&format!("plan_moves/propose_{label}_ewf19"), |b| {
            b.iter(|| moves::propose_discard(&mut binding, kind, &mut rng))
        });

        // Propose + apply + rollback: the full per-attempt cycle the
        // search pays for a rejected move. Rolling back returns the
        // binding to the warmed state, so the measurement is stationary.
        let mut binding = warmed.clone();
        let mut rng = StdRng::seed_from_u64(11);
        c.bench_function(&format!("plan_moves/apply_{label}_ewf19"), |b| {
            b.iter(|| {
                binding.begin();
                let applied = moves::try_move(&mut binding, kind, &mut rng);
                binding.rollback();
                applied
            })
        });
    }

    // The allocation claim, enforced rather than timed. Proposing never
    // mutates the binding, so replaying the measured stream once first
    // walks the scratch buffers (and the ranked moves' transient journal)
    // through exactly the capacities the measured pass will need — after
    // that warm-up replay, the identical stream must not touch the
    // allocator at all.
    let mut binding = warmed.clone();
    assert!(binding.plan_enabled(), "the compiled plan is on by default");
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..10_000 {
        let kind = set.pick(&mut rng);
        moves::propose_discard(&mut binding, kind, &mut rng);
    }
    let mut rng = StdRng::seed_from_u64(23);
    ALLOCATIONS.store(0, Ordering::SeqCst);
    for _ in 0..10_000 {
        let kind = set.pick(&mut rng);
        moves::propose_discard(&mut binding, kind, &mut rng);
    }
    let with_plan = ALLOCATIONS.load(Ordering::SeqCst);

    // The same stream through the legacy collect()-based proposers, for
    // contrast in the printed report (the legacy path allocates per draw,
    // so the warm-up replay buys it nothing).
    let mut legacy = warmed.clone();
    legacy.set_plan_enabled(false);
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..10_000 {
        let kind = set.pick(&mut rng);
        moves::propose_discard(&mut legacy, kind, &mut rng);
    }
    let mut rng = StdRng::seed_from_u64(23);
    ALLOCATIONS.store(0, Ordering::SeqCst);
    for _ in 0..10_000 {
        let kind = set.pick(&mut rng);
        moves::propose_discard(&mut legacy, kind, &mut rng);
    }
    let without_plan = ALLOCATIONS.load(Ordering::SeqCst);

    eprintln!(
        "plan_moves/alloc_profile_ewf19: 10000 steady-state proposes made \
         {with_plan} allocations with the plan, {without_plan} without"
    );
    assert_eq!(
        with_plan, 0,
        "the compiled-plan propose path allocated {with_plan} times in \
         10000 steady-state draws; it must be allocation-free"
    );

    c.bench_function("plan_moves/propose_mixed_ewf19", |b| {
        let mut binding = warmed.clone();
        let mut rng = StdRng::seed_from_u64(29);
        b.iter(|| {
            let kind = set.pick(&mut rng);
            moves::propose_discard(&mut binding, kind, &mut rng)
        })
    });
}

criterion_group!(benches, bench_plan_moves);
criterion_main!(benches);
