//! Interconnect cost-model benchmarks: connection matrix updates, RTL
//! lowering, verification and the multiplexer-merging post-pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use salsa_alloc::{initial_allocation, lower, AllocContext};
use salsa_cdfg::benchmarks::ewf;
use salsa_datapath::{
    merge_muxes, traffic_from_rtl, verify, ConnectionMatrix, Datapath, FuId, Port, RegId, Sink,
    Source,
};
use salsa_sched::{fds_schedule, FuLibrary};

fn bench_cost_model(c: &mut Criterion) {
    c.bench_function("conn_matrix/add_remove_64", |b| {
        b.iter(|| {
            let mut m = ConnectionMatrix::new();
            for i in 0..64usize {
                m.add(
                    Source::RegOut(RegId::from_index(i % 8)),
                    Sink::FuIn(FuId::from_index(i % 4), Port::Left),
                );
            }
            for i in 0..64usize {
                m.remove(
                    Source::RegOut(RegId::from_index(i % 8)),
                    Sink::FuIn(FuId::from_index(i % 4), Port::Left),
                );
            }
            m
        })
    });

    let library = FuLibrary::standard();
    let graph = ewf();
    let schedule = fds_schedule(&graph, &library, 17).unwrap();
    let pool = Datapath::new(
        &schedule.fu_demand(&graph, &library),
        schedule.register_demand(&graph, &library),
    );
    let ctx = AllocContext::new(&graph, &schedule, &library, pool).unwrap();
    let binding = initial_allocation(&ctx);
    let (rtl, claims) = lower(&binding);

    c.bench_function("lower/ewf17", |b| b.iter(|| lower(black_box(&binding))));
    c.bench_function("verify/ewf17", |b| {
        b.iter(|| verify(&graph, &schedule, &library, &ctx.datapath, &rtl, &claims).unwrap())
    });
    let traffic = traffic_from_rtl(&rtl);
    c.bench_function("mux_merge/ewf17", |b| b.iter(|| merge_muxes(black_box(&traffic))));
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
