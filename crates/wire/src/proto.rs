//! Client-side connections: protocol negotiation, connection reuse and
//! request pipelining.
//!
//! A [`Connection`] holds one TCP socket for its whole life (no
//! per-request reconnects), negotiates binary framing via the 3-byte
//! hello (see [`frame`](crate::frame)) and keeps multiple requests in
//! flight. In binary mode responses carry correlation ids and may return
//! out of order; in legacy JSON line mode the server answers strictly in
//! request order, so the connection pairs responses with the oldest
//! outstanding id. Either way callers use the same API: [`send`] returns
//! an id, [`recv_for`]/[`call`] deliver the matching response (stashing
//! any other completions for their own waiters).
//!
//! [`Protocol::Auto`] degrades gracefully: against a JSON-only peer the
//! hello comes back as a parse-error *line* (never a hang — the hello is
//! newline-terminated), which the client consumes before falling back to
//! line mode. [`Protocol::Binary`] treats that as a hard error instead.
//!
//! Every connection counts its own traffic ([`WireCounts`]): socket
//! bytes in/out and messages in/out, the numbers loadgen and the bench
//! harness report as bytes/message.
//!
//! [`send`]: Connection::send
//! [`recv_for`]: Connection::recv_for
//! [`call`]: Connection::call

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::frame::{read_json_line, write_frame, MAGIC, MAX_FRAME, WIRE_VERSION};
use crate::json::Json;
use crate::{binary, frame};

/// Which wire protocol to speak (or negotiate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Legacy newline-delimited JSON. Works against every server.
    Json,
    /// Binary framing, required: fail if the peer cannot negotiate it.
    Binary,
    /// Try binary, fall back to JSON if the peer is line-only.
    Auto,
}

impl Protocol {
    /// Parses a `--protocol` flag value.
    pub fn parse(text: &str) -> Option<Protocol> {
        match text {
            "json" => Some(Protocol::Json),
            "binary" => Some(Protocol::Binary),
            "auto" => Some(Protocol::Auto),
            _ => None,
        }
    }
}

/// Traffic counters for one connection (socket bytes and whole messages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCounts {
    /// Bytes read off the socket.
    pub bytes_in: u64,
    /// Bytes written to the socket.
    pub bytes_out: u64,
    /// Messages (frames or lines) received.
    pub frames_in: u64,
    /// Messages (frames or lines) sent.
    pub frames_out: u64,
}

impl WireCounts {
    /// Adds another connection's counters into this one (fleet totals).
    pub fn absorb(&mut self, other: &WireCounts) {
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
    }
}

/// `Read` adapter that counts bytes as they come off the socket.
#[derive(Debug)]
struct CountRead {
    inner: TcpStream,
    count: Arc<AtomicU64>,
}

impl Read for CountRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.count.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Json,
    Binary(u8),
}

/// One negotiated, reusable, pipelined client connection.
#[derive(Debug)]
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<CountRead>,
    mode: Mode,
    next_id: u64,
    /// Outstanding request ids in send order (line mode answers in this
    /// order; binary mode uses it only to cap pipelining bookkeeping).
    pending: VecDeque<u64>,
    /// Responses that arrived for ids other than the one being awaited.
    stash: Vec<(u64, Json)>,
    bytes_in: Arc<AtomicU64>,
    bytes_out: u64,
    frames_in: u64,
    frames_out: u64,
    scratch: Vec<u8>,
}

impl Connection {
    /// Connects to `addr` and negotiates `protocol`.
    ///
    /// With [`Protocol::Auto`], a peer that reacts to the binary hello
    /// by erroring out or closing the connection (legacy line servers
    /// treat the magic byte as invalid UTF-8) is retried once over a
    /// fresh connection in plain JSON mode.
    pub fn connect(addr: &str, protocol: Protocol) -> io::Result<Connection> {
        match Connection::from_stream(TcpStream::connect(addr)?, protocol) {
            Err(e) if protocol == Protocol::Auto && hello_rebuffed(&e) => {
                Connection::from_stream(TcpStream::connect(addr)?, Protocol::Json)
            }
            other => other,
        }
    }

    /// Wraps an already-connected stream and negotiates `protocol`.
    pub fn from_stream(stream: TcpStream, protocol: Protocol) -> io::Result<Connection> {
        // Small request/response messages interact badly with Nagle +
        // delayed ACK (tens of ms per round trip); every connection in
        // the system is latency-bound, so opt out unconditionally.
        stream.set_nodelay(true)?;
        let bytes_in = Arc::new(AtomicU64::new(0));
        let reader =
            BufReader::new(CountRead { inner: stream.try_clone()?, count: Arc::clone(&bytes_in) });
        let mut conn = Connection {
            writer: stream,
            reader,
            mode: Mode::Json,
            next_id: 1,
            pending: VecDeque::new(),
            stash: Vec::new(),
            bytes_in,
            bytes_out: 0,
            frames_in: 0,
            frames_out: 0,
            scratch: Vec::new(),
        };
        match protocol {
            Protocol::Json => {}
            Protocol::Binary | Protocol::Auto => conn.hello(protocol == Protocol::Binary)?,
        }
        Ok(conn)
    }

    /// Sends the binary hello and classifies the peer from its first
    /// response byte. `strict` turns a JSON-only peer into an error.
    fn hello(&mut self, strict: bool) -> io::Result<()> {
        self.writer.write_all(&[MAGIC, WIRE_VERSION, b'\n'])?;
        self.writer.flush()?;
        self.bytes_out += 3;
        let mut first = [0u8; 1];
        if let Err(e) = self.reader.read_exact(&mut first) {
            // A peer that hangs up on the magic byte is a line server
            // that treated it as garbage input.
            return Err(if strict && hello_rebuffed(&e) {
                invalid("peer does not speak the binary protocol (closed on hello)")
            } else {
                e
            });
        }
        if first[0] == MAGIC {
            let mut rest = [0u8; 2];
            self.reader.read_exact(&mut rest)?;
            if rest[1] != b'\n' {
                return Err(invalid("malformed binary hello from peer"));
            }
            let version = rest[0].min(WIRE_VERSION);
            if version == 0 {
                return Err(invalid("peer offered binary protocol version 0"));
            }
            self.mode = Mode::Binary(version);
            return Ok(());
        }
        // A line server answered our hello with a parse-error line.
        // Drain it, then either fall back to line mode or fail strictly.
        let mut discard = Vec::new();
        self.reader.read_until(b'\n', &mut discard)?;
        if strict {
            return Err(invalid("peer does not speak the binary protocol"));
        }
        self.mode = Mode::Json;
        Ok(())
    }

    /// `"json"` or `"binary"` — the negotiated mode.
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Json => "json",
            Mode::Binary(_) => "binary",
        }
    }

    /// Negotiated binary version, if in binary mode.
    pub fn binary_version(&self) -> Option<u8> {
        match self.mode {
            Mode::Json => None,
            Mode::Binary(v) => Some(v),
        }
    }

    /// Number of requests sent and not yet answered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Snapshot of this connection's traffic counters.
    pub fn counts(&self) -> WireCounts {
        WireCounts {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out,
            frames_in: self.frames_in,
            frames_out: self.frames_out,
        }
    }

    /// Sets the socket read timeout (used by pollers layered above).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request without waiting; returns its correlation id.
    pub fn send(&mut self, message: &Json) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        match self.mode {
            Mode::Json => {
                let mut line = message.to_string_compact();
                line.push('\n');
                self.writer.write_all(line.as_bytes())?;
                self.writer.flush()?;
                self.bytes_out += line.len() as u64;
            }
            Mode::Binary(_) => {
                self.scratch.clear();
                binary::encode_into(message, &mut self.scratch);
                if self.scratch.len() > MAX_FRAME {
                    return Err(invalid("request exceeds MAX_FRAME"));
                }
                let before = self.scratch.len();
                let body = std::mem::take(&mut self.scratch);
                write_frame(&mut self.writer, id, &body)?;
                self.scratch = body;
                // Frame overhead: length prefix + id varint.
                self.bytes_out += before as u64 + varint_len(id) + varint_len(before as u64 + varint_len(id));
            }
        }
        self.frames_out += 1;
        self.pending.push_back(id);
        Ok(id)
    }

    /// Blocks for the next response from the wire (or the stash), in
    /// completion order, returning `(correlation_id, document)`.
    pub fn recv_any(&mut self) -> io::Result<(u64, Json)> {
        if !self.stash.is_empty() {
            let (id, doc) = self.stash.remove(0);
            return Ok((id, doc));
        }
        self.recv_wire()
    }

    /// Blocks for the next response off the socket, bypassing the stash
    /// (so [`recv_for`](Connection::recv_for)'s stash-then-retry loop
    /// cannot feed itself its own stashed entries).
    fn recv_wire(&mut self) -> io::Result<(u64, Json)> {
        match self.mode {
            Mode::Json => {
                let doc = read_json_line(&mut self.reader)?
                    .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before replying"))?;
                let id = self
                    .pending
                    .pop_front()
                    .ok_or_else(|| invalid("response line with no request outstanding"))?;
                self.frames_in += 1;
                Ok((id, doc))
            }
            Mode::Binary(_) => {
                let (id, doc) = frame::read_frame(&mut self.reader)?
                    .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before replying"))?;
                self.pending.retain(|&p| p != id);
                self.frames_in += 1;
                Ok((id, doc))
            }
        }
    }

    /// Blocks until the response for `id` arrives, stashing any other
    /// completions for their own waiters.
    pub fn recv_for(&mut self, id: u64) -> io::Result<Json> {
        if let Some(at) = self.stash.iter().position(|(sid, _)| *sid == id) {
            return Ok(self.stash.remove(at).1);
        }
        loop {
            let (got, doc) = self.recv_wire()?;
            if got == id {
                return Ok(doc);
            }
            self.stash.push((got, doc));
        }
    }

    /// One blocking request/response round trip on the reused socket.
    pub fn call(&mut self, message: &Json) -> io::Result<Json> {
        let id = self.send(message)?;
        self.recv_for(id)
    }
}

fn varint_len(value: u64) -> u64 {
    let mut n = 1;
    let mut v = value >> 7;
    while v != 0 {
        n += 1;
        v >>= 7;
    }
    n
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Errors that mean "the peer rejected the binary hello outright"
/// rather than "the network failed": worth one JSON-mode retry.
fn hello_rebuffed(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::InvalidData
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_json_line;
    use crate::json::parse_json;
    use std::net::TcpListener;

    /// A minimal JSON-only echo server, faithful to the legacy stack:
    /// UTF-8 `read_line` framing, so the binary hello's magic byte makes
    /// it drop the connection — exactly what old servers do. Serves
    /// `conns` sequential connections, then exits.
    fn line_echo_server(conns: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for _ in 0..conns {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    match parse_json(line.trim()) {
                        Ok(doc) => write_json_line(&mut writer, &doc).unwrap(),
                        Err(_) => {
                            let err = parse_json(r#"{"status":"error","kind":"parse"}"#).unwrap();
                            write_json_line(&mut writer, &err).unwrap();
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn auto_falls_back_to_json_against_a_line_server() {
        let (addr, handle) = line_echo_server(2);
        let mut conn = Connection::connect(&addr.to_string(), Protocol::Auto).unwrap();
        assert_eq!(conn.mode_name(), "json");
        let request = parse_json(r#"{"cmd":"ping"}"#).unwrap();
        let reply = conn.call(&request).unwrap();
        assert_eq!(reply, request, "echo after fallback");
        let counts = conn.counts();
        assert!(counts.bytes_out > 0 && counts.bytes_in > 0);
        assert_eq!(counts.frames_out, 1);
        drop(conn);
        handle.join().unwrap();
    }

    #[test]
    fn strict_binary_fails_against_a_line_server() {
        let (addr, handle) = line_echo_server(1);
        let err = Connection::connect(&addr.to_string(), Protocol::Binary).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        handle.join().unwrap();
    }

    #[test]
    fn json_mode_pairs_pipelined_responses_in_order() {
        let (addr, handle) = line_echo_server(1);
        let mut conn = Connection::connect(&addr.to_string(), Protocol::Json).unwrap();
        let a = conn.send(&parse_json(r#"{"n":1}"#).unwrap()).unwrap();
        let b = conn.send(&parse_json(r#"{"n":2}"#).unwrap()).unwrap();
        assert_eq!(conn.in_flight(), 2);
        // Await the second first: the first gets stashed, ids stay right.
        let doc_b = conn.recv_for(b).unwrap();
        let doc_a = conn.recv_for(a).unwrap();
        assert_eq!(doc_a.get("n").and_then(Json::as_u64), Some(1));
        assert_eq!(doc_b.get("n").and_then(Json::as_u64), Some(2));
        assert_eq!(conn.in_flight(), 0);
        drop(conn);
        handle.join().unwrap();
    }
}
