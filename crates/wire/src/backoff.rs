//! Seeded, jittered exponential backoff.
//!
//! Retry loops against the allocation service (load generator clients,
//! `submit --retry`, worker reconnects) used to sleep a fixed
//! `retry_after_ms` hint, which synchronises rejected clients into retry
//! stampedes. [`Backoff`] replaces that with the standard
//! exponential-plus-full-jitter schedule, driven by a tiny splitmix64
//! generator so a given seed always yields the same delay sequence —
//! load-generator rows stay reproducible run to run.

use std::time::Duration;

/// Jittered exponential backoff with a deterministic per-seed schedule.
///
/// Attempt `n` sleeps a uniformly random duration in
/// `[base, min(cap, base << n)]` (full jitter with a floor of `base`, so
/// a server-provided hint is always honoured as a minimum).
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// Creates a schedule starting at `base` and capped at `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Backoff {
        Backoff { base, cap: cap.max(base), attempt: 0, state: seed }
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Returns the next delay in the schedule and advances it.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(20); // 2^20 × base already dwarfs any cap we use
        self.attempt = self.attempt.saturating_add(1);
        let ceiling = self
            .base
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX))
            .min(self.cap)
            .max(self.base);
        let span = ceiling.as_millis().saturating_sub(self.base.as_millis()) as u64;
        if span == 0 {
            return self.base;
        }
        self.base + Duration::from_millis(self.next_u64() % (span + 1))
    }

    /// Resets the attempt counter (e.g. after a successful request) while
    /// keeping the generator state, so later retry bursts still draw from
    /// the same deterministic stream.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    // splitmix64: tiny, full-period, and good enough for jitter.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, n: usize) -> Vec<Duration> {
        let mut b = Backoff::new(seed, Duration::from_millis(10), Duration::from_millis(500));
        (0..n).map(|_| b.next_delay()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(schedule(7, 8), schedule(7, 8));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(schedule(7, 8), schedule(8, 8));
    }

    #[test]
    fn delays_stay_within_base_and_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut b = Backoff::new(99, base, cap);
        for attempt in 0..32 {
            let d = b.next_delay();
            assert!(d >= base, "attempt {attempt}: {d:?} below base");
            assert!(d <= cap, "attempt {attempt}: {d:?} above cap");
        }
    }

    #[test]
    fn ceiling_grows_exponentially_until_cap() {
        // With the jitter stream fixed, the *maximum possible* delay per
        // attempt is base<<n capped; sample many draws to observe growth.
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let max_at = |attempt: u32| -> Duration {
            (0..200u64)
                .map(|seed| {
                    let mut b = Backoff::new(seed, base, cap);
                    for _ in 0..attempt {
                        b.next_delay();
                    }
                    b.next_delay()
                })
                .max()
                .unwrap()
        };
        assert_eq!(max_at(0), base, "first attempt is exactly base");
        assert!(max_at(3) > base * 2, "later attempts spread upward");
        assert!(max_at(12) <= cap);
    }

    #[test]
    fn reset_restarts_the_ceiling_but_not_the_stream() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut b = Backoff::new(3, base, cap);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.next_delay(), base, "post-reset first delay is base again");
    }

    #[test]
    fn zero_base_degrades_gracefully() {
        let mut b = Backoff::new(1, Duration::ZERO, Duration::from_millis(100));
        let d = b.next_delay();
        assert!(d <= Duration::from_millis(100));
    }
}
