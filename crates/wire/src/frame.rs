//! Message framing, in both the legacy and the binary flavours.
//!
//! *Line framing* — one compact JSON object per newline-terminated line —
//! is the protocol the services launched with and remains the
//! compatibility mode for old clients. *Binary framing* wraps the
//! [`binary`](crate::binary) codec: each frame is a varint byte length
//! followed by a varint correlation id and one encoded document. The
//! correlation id lets a pipelined connection keep many requests in
//! flight and match responses out of order; legacy line mode has no ids,
//! so responses there are written strictly in request order.
//!
//! A connection picks its flavour with a 3-byte hello (see
//! [`MAGIC`]/[`WIRE_VERSION`]): binary clients lead with
//! `[MAGIC, version, b'\n']`, which no JSON document can start with, and
//! the server echoes the same shape with the minimum of the two versions.
//! JSON documents always start with `{` (or whitespace), so a server can
//! classify every connection from its first byte — and because the hello
//! is newline-terminated, a binary-capable client that reaches a
//! JSON-only line server gets a parse-error *line* back instead of a
//! hang, which is what client-side fallback keys on.
//!
//! This module also holds [`Payload`], the render-once response body:
//! one [`Json`] document with lazily cached compact-text and binary
//! renderings, so a byte-replay cache serves both protocols verbatim
//! without re-encoding.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use crate::binary::{self, CodecError};
use crate::json::{parse_json, Json, JsonError};

/// First byte of a binary-protocol hello. No JSON request can start with
/// it, so it doubles as the protocol discriminator on the server side.
pub const MAGIC: u8 = 0xb5;

/// The binary protocol version this build speaks. Peers agree on the
/// minimum of their versions during the hello exchange.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on one frame's body length. Larger declared lengths are a
/// protocol error (the connection is closed), bounding per-connection
/// memory no matter what a peer claims.
pub const MAX_FRAME: usize = 32 << 20;

/// Writes one binary frame: `varint(total) varint(id) body`, flushed.
/// `body` is the [`binary`] encoding of one document (see
/// [`Payload::bin`] for the cached render).
pub fn write_frame<W: Write>(writer: &mut W, id: u64, body: &[u8]) -> io::Result<()> {
    let mut head = Vec::with_capacity(20);
    binary::write_varint(&mut head, id);
    let id_len = head.len();
    let mut prefix = Vec::with_capacity(10);
    binary::write_varint(&mut prefix, (id_len + body.len()) as u64);
    writer.write_all(&prefix)?;
    writer.write_all(&head)?;
    writer.write_all(body)?;
    writer.flush()
}

/// Appends one binary frame to an in-memory buffer (the poll loop's write
/// path: no flush semantics, the loop drains the buffer as the socket
/// accepts it).
pub fn append_frame(out: &mut Vec<u8>, id: u64, body: &[u8]) {
    let mut head = Vec::with_capacity(20);
    binary::write_varint(&mut head, id);
    binary::write_varint(out, (head.len() + body.len()) as u64);
    out.extend_from_slice(&head);
    out.extend_from_slice(body);
}

/// Blocking read of one binary frame: `Ok(None)` on a clean EOF at a
/// frame boundary; oversized, truncated or undecodable frames surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: BufRead>(reader: &mut R) -> io::Result<Option<(u64, Json)>> {
    let Some(len) = read_varint_stream(reader, true)? else {
        return Ok(None);
    };
    if len as usize > MAX_FRAME {
        return Err(invalid(format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}")));
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid("peer closed mid-frame")
        } else {
            e
        }
    })?;
    let mut pos = 0usize;
    let id = binary::read_varint(&body, &mut pos).map_err(|e| invalid(e.to_string()))?;
    let doc = binary::decode_at(&body, &mut pos, 0).map_err(|e| invalid(e.to_string()))?;
    if pos != body.len() {
        return Err(invalid("trailing bytes after frame document"));
    }
    Ok(Some((id, doc)))
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Reads a varint byte-by-byte from a stream. With `eof_ok`, a clean EOF
/// before the first byte returns `Ok(None)`; EOF mid-varint is always an
/// error.
fn read_varint_stream<R: BufRead>(reader: &mut R, eof_ok: bool) -> io::Result<Option<u64>> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && shift == 0 && eof_ok => {
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        let b = byte[0];
        if shift == 63 && b > 1 {
            return Err(invalid("frame varint overflows u64"));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
        if shift > 63 {
            return Err(invalid("frame varint longer than 10 bytes"));
        }
    }
}

/// Scans an in-memory buffer for one complete binary frame (the poll
/// loop's read path). Returns `Ok(None)` while the frame is still
/// arriving, or `Ok(Some((consumed, id, doc)))` once whole. Errors are
/// fatal to the connection (oversized length, corrupt body).
pub fn split_frame(buf: &[u8]) -> Result<Option<(usize, u64, Json)>, CodecError> {
    let mut pos = 0usize;
    let len = match binary::read_varint(buf, &mut pos) {
        Ok(len) => len,
        // A truncated varint at the buffer head just means "need more
        // bytes" — unless it is already over the 10-byte limit.
        Err(_) if buf.len() < 10 => return Ok(None),
        Err(e) => return Err(e),
    };
    if len as usize > MAX_FRAME {
        return Err(CodecError { offset: 0, message: format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}") });
    }
    let body_end = pos + len as usize;
    if buf.len() < body_end {
        return Ok(None);
    }
    let body = &buf[pos..body_end];
    let mut at = 0usize;
    let id = binary::read_varint(body, &mut at)?;
    let doc = binary::decode_at(body, &mut at, 0)?;
    if at != body.len() {
        return Err(CodecError { offset: pos + at, message: "trailing bytes after frame document".into() });
    }
    Ok(Some((body_end, id, doc)))
}

/// A response body rendered once per protocol, shared by reference.
///
/// Built from the response [`Json`] (without any correlation id — ids are
/// per-request and framed separately), it caches the compact-text line
/// and the binary encoding on first use. The server's result cache stores
/// `Arc<Payload>`, so a cache hit replays stored bytes verbatim on either
/// protocol — the byte-replay determinism contract, now protocol-wide.
pub struct Payload {
    json: Json,
    text: OnceLock<String>,
    bin: OnceLock<Vec<u8>>,
}

impl Payload {
    /// Wraps a response document.
    pub fn new(json: Json) -> Payload {
        Payload { json, text: OnceLock::new(), bin: OnceLock::new() }
    }

    /// The underlying document.
    pub fn json(&self) -> &Json {
        &self.json
    }

    /// Compact text rendering (no trailing newline), rendered once.
    pub fn text(&self) -> &str {
        self.text.get_or_init(|| self.json.to_string_compact())
    }

    /// Binary rendering (frame body sans correlation id), rendered once.
    pub fn bin(&self) -> &[u8] {
        self.bin.get_or_init(|| binary::encode(&self.json))
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Payload").field("json", &self.json).finish()
    }
}

/// Writes `message` as one compact line and flushes.
pub fn write_json_line<W: Write>(writer: &mut W, message: &Json) -> io::Result<()> {
    let mut line = message.to_string_compact();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Reads one line and parses it as JSON. Returns `Ok(None)` on a clean
/// EOF (peer closed between messages); a parse failure is surfaced as
/// [`io::ErrorKind::InvalidData`] carrying the [`JsonError`] text.
pub fn read_json_line<R: BufRead>(reader: &mut R) -> io::Result<Option<Json>> {
    let mut line = String::new();
    loop {
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            // Skip blank keep-alive lines between messages.
            line.clear();
            continue;
        }
        return parse_json(trimmed)
            .map(Some)
            .map_err(|e: JsonError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

/// A buffered line reader over a cloned read half of a [`TcpStream`],
/// tolerant of read-timeout polls: [`poll_line`](LineReader::poll_line)
/// distinguishes "nothing yet" from data and EOF so callers can interleave
/// reads with shutdown checks, while partial lines stay buffered across
/// polls.
pub struct LineReader {
    reader: BufReader<TcpStream>,
    partial: String,
}

/// The outcome of one [`LineReader::poll_line`] call.
#[derive(Debug, PartialEq)]
pub enum Polled {
    /// A complete line arrived and parsed.
    Message(Json),
    /// The read timed out with no complete line; try again later.
    Pending,
    /// The peer closed the connection.
    Closed,
}

impl LineReader {
    /// Wraps a read half (clone the stream; keep the original for writes).
    pub fn new(stream: TcpStream) -> LineReader {
        LineReader { reader: BufReader::new(stream), partial: String::new() }
    }

    /// Blocking read of the next JSON line (honours the stream's read
    /// timeout by returning [`Polled::Pending`] on a timeout tick).
    pub fn poll_line(&mut self) -> io::Result<Polled> {
        match self.reader.read_line(&mut self.partial) {
            Ok(0) => Ok(Polled::Closed),
            Ok(_) if self.partial.ends_with('\n') => {
                let text = std::mem::take(&mut self.partial);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    return Ok(Polled::Pending);
                }
                parse_json(trimmed)
                    .map(Polled::Message)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            // A read_line that grew the buffer without reaching '\n' hit
            // EOF mid-line; report Closed (the fragment is unrecoverable).
            Ok(_) => Ok(Polled::Closed),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Polled::Pending)
            }
            Err(e) => Err(e),
        }
    }
}

/// One blocking request/response round trip over a generic stream pair.
pub fn roundtrip<S: Read + Write>(stream: &mut S, request: &Json) -> io::Result<Json>
where
    for<'a> &'a mut S: Read,
{
    write_json_line(stream, request)?;
    let mut reader = BufReader::new(&mut *stream);
    read_json_line(&mut reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before replying"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn lines_roundtrip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            while let Some(msg) = read_json_line(&mut reader).unwrap() {
                write_json_line(&mut writer, &msg).unwrap();
            }
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        let request = parse_json(r#"{"cmd":"ping","n":3}"#).unwrap();
        let reply = roundtrip(&mut stream, &request).unwrap();
        assert_eq!(reply, request);
        drop(stream);
        echo.join().unwrap();
    }

    #[test]
    fn poll_distinguishes_pending_from_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_read_timeout(Some(std::time::Duration::from_millis(20))).unwrap();
        let mut reader = LineReader::new(server.try_clone().unwrap());

        assert_eq!(reader.poll_line().unwrap(), Polled::Pending, "no data yet");
        // A split line arrives across two polls.
        client.write_all(b"{\"a\":").unwrap();
        client.flush().unwrap();
        assert_eq!(reader.poll_line().unwrap(), Polled::Pending, "half a line");
        client.write_all(b"1}\n").unwrap();
        client.flush().unwrap();
        match reader.poll_line().unwrap() {
            Polled::Message(json) => assert_eq!(json.get("a").and_then(Json::as_u64), Some(1)),
            other => panic!("expected message, got {other:?}"),
        }
        drop(client);
        assert_eq!(reader.poll_line().unwrap(), Polled::Closed);
    }

    #[test]
    fn bad_json_is_invalid_data_not_a_panic() {
        let mut reader = std::io::Cursor::new(b"{oops\n".to_vec());
        let mut buffered = BufReader::new(&mut reader);
        let err = read_json_line(&mut buffered).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_frames_roundtrip_with_ids() {
        let doc = parse_json(r#"{"cmd":"allocate","seed":42}"#).unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, &crate::binary::encode(&doc)).unwrap();
        write_frame(&mut wire, 300, &crate::binary::encode(&doc)).unwrap();
        let mut reader = BufReader::new(std::io::Cursor::new(wire));
        let (id1, d1) = read_frame(&mut reader).unwrap().unwrap();
        let (id2, d2) = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!((id1, id2), (7, 300));
        assert_eq!(d1, doc);
        assert_eq!(d2, doc);
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn split_frame_distinguishes_partial_from_corrupt() {
        let doc = parse_json(r#"{"a":[1,2,3]}"#).unwrap();
        let mut wire = Vec::new();
        append_frame(&mut wire, 9, &crate::binary::encode(&doc));
        // Every proper prefix is "still arriving", never an error.
        for cut in 0..wire.len() {
            assert!(matches!(split_frame(&wire[..cut]), Ok(None)), "prefix {cut}");
        }
        let (consumed, id, back) = split_frame(&wire).unwrap().unwrap();
        assert_eq!((consumed, id), (wire.len(), 9));
        assert_eq!(back, doc);
        // An oversized declared length is fatal immediately.
        let mut huge = Vec::new();
        crate::binary::write_varint(&mut huge, (MAX_FRAME + 1) as u64);
        assert!(split_frame(&huge).is_err());
    }

    #[test]
    fn payload_renders_both_protocols_from_one_document() {
        let doc = parse_json(r#"{"status":"ok","cost":12}"#).unwrap();
        let payload = Payload::new(doc.clone());
        assert_eq!(payload.text(), doc.to_string_compact());
        assert_eq!(crate::binary::decode(payload.bin()).unwrap(), doc);
    }
}
