//! Newline-delimited JSON framing: one request or response per line, one
//! JSON object per line. The helpers here wrap the read/write halves of a
//! [`TcpStream`] (or any `Read`/`Write`) so the server, the cluster
//! coordinator and the cluster workers all frame messages identically.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::json::{parse_json, Json, JsonError};

/// Writes `message` as one compact line and flushes.
pub fn write_json_line<W: Write>(writer: &mut W, message: &Json) -> io::Result<()> {
    let mut line = message.to_string_compact();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Reads one line and parses it as JSON. Returns `Ok(None)` on a clean
/// EOF (peer closed between messages); a parse failure is surfaced as
/// [`io::ErrorKind::InvalidData`] carrying the [`JsonError`] text.
pub fn read_json_line<R: BufRead>(reader: &mut R) -> io::Result<Option<Json>> {
    let mut line = String::new();
    loop {
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            // Skip blank keep-alive lines between messages.
            line.clear();
            continue;
        }
        return parse_json(trimmed)
            .map(Some)
            .map_err(|e: JsonError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

/// A buffered line reader over a cloned read half of a [`TcpStream`],
/// tolerant of read-timeout polls: [`poll_line`](LineReader::poll_line)
/// distinguishes "nothing yet" from data and EOF so callers can interleave
/// reads with shutdown checks, while partial lines stay buffered across
/// polls.
pub struct LineReader {
    reader: BufReader<TcpStream>,
    partial: String,
}

/// The outcome of one [`LineReader::poll_line`] call.
#[derive(Debug, PartialEq)]
pub enum Polled {
    /// A complete line arrived and parsed.
    Message(Json),
    /// The read timed out with no complete line; try again later.
    Pending,
    /// The peer closed the connection.
    Closed,
}

impl LineReader {
    /// Wraps a read half (clone the stream; keep the original for writes).
    pub fn new(stream: TcpStream) -> LineReader {
        LineReader { reader: BufReader::new(stream), partial: String::new() }
    }

    /// Blocking read of the next JSON line (honours the stream's read
    /// timeout by returning [`Polled::Pending`] on a timeout tick).
    pub fn poll_line(&mut self) -> io::Result<Polled> {
        match self.reader.read_line(&mut self.partial) {
            Ok(0) => Ok(Polled::Closed),
            Ok(_) if self.partial.ends_with('\n') => {
                let text = std::mem::take(&mut self.partial);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    return Ok(Polled::Pending);
                }
                parse_json(trimmed)
                    .map(Polled::Message)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            // A read_line that grew the buffer without reaching '\n' hit
            // EOF mid-line; report Closed (the fragment is unrecoverable).
            Ok(_) => Ok(Polled::Closed),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Polled::Pending)
            }
            Err(e) => Err(e),
        }
    }
}

/// One blocking request/response round trip over a generic stream pair.
pub fn roundtrip<S: Read + Write>(stream: &mut S, request: &Json) -> io::Result<Json>
where
    for<'a> &'a mut S: Read,
{
    write_json_line(stream, request)?;
    let mut reader = BufReader::new(&mut *stream);
    read_json_line(&mut reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before replying"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn lines_roundtrip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            while let Some(msg) = read_json_line(&mut reader).unwrap() {
                write_json_line(&mut writer, &msg).unwrap();
            }
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        let request = parse_json(r#"{"cmd":"ping","n":3}"#).unwrap();
        let reply = roundtrip(&mut stream, &request).unwrap();
        assert_eq!(reply, request);
        drop(stream);
        echo.join().unwrap();
    }

    #[test]
    fn poll_distinguishes_pending_from_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_read_timeout(Some(std::time::Duration::from_millis(20))).unwrap();
        let mut reader = LineReader::new(server.try_clone().unwrap());

        assert_eq!(reader.poll_line().unwrap(), Polled::Pending, "no data yet");
        // A split line arrives across two polls.
        client.write_all(b"{\"a\":").unwrap();
        client.flush().unwrap();
        assert_eq!(reader.poll_line().unwrap(), Polled::Pending, "half a line");
        client.write_all(b"1}\n").unwrap();
        client.flush().unwrap();
        match reader.poll_line().unwrap() {
            Polled::Message(json) => assert_eq!(json.get("a").and_then(Json::as_u64), Some(1)),
            other => panic!("expected message, got {other:?}"),
        }
        drop(client);
        assert_eq!(reader.poll_line().unwrap(), Polled::Closed);
    }

    #[test]
    fn bad_json_is_invalid_data_not_a_panic() {
        let mut reader = std::io::Cursor::new(b"{oops\n".to_vec());
        let mut buffered = BufReader::new(&mut reader);
        let err = read_json_line(&mut buffered).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
