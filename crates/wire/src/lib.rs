//! `salsa-wire` — the shared wire substrate of the SALSA services.
//!
//! Both the allocation service (`salsa-serve`) and the distributed
//! portfolio cluster (`salsa-cluster`) speak newline-delimited JSON over
//! TCP. This crate holds the pieces they share, with the workspace's
//! no-external-dependencies policy intact (std only):
//!
//! - [`json`] — the hand-rolled JSON document model: insertion-ordered
//!   objects (deterministic serialization, which the byte-replay caches
//!   and the cluster's bit-exact reduction contract rely on) and a
//!   parser that distinguishes integers from floats;
//! - [`frame`] — one-JSON-object-per-line framing over buffered TCP
//!   streams, with the poll-tolerant read loop both services use;
//! - [`backoff`] — seeded, jittered exponential backoff for retry loops
//!   (backpressure resubmission, worker reconnects), deterministic per
//!   seed so load-generator runs stay reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod frame;
pub mod json;

pub use backoff::Backoff;
pub use frame::{read_json_line, roundtrip, write_json_line, LineReader, Polled};
pub use json::{parse_json, Json, JsonError};
