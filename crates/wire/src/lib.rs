//! `salsa-wire` — the shared wire substrate of the SALSA services.
//!
//! Both the allocation service (`salsa-serve`) and the distributed
//! portfolio cluster (`salsa-cluster`) speak newline-delimited JSON over
//! TCP. This crate holds the pieces they share, with the workspace's
//! no-external-dependencies policy intact (std only):
//!
//! - [`json`] — the hand-rolled JSON document model: insertion-ordered
//!   objects (deterministic serialization, which the byte-replay caches
//!   and the cluster's bit-exact reduction contract rely on) and a
//!   parser that distinguishes integers from floats;
//! - [`binary`] — a compact tagged binary encoding of the same document
//!   model (varint integers, raw IEEE float bits), so both protocols
//!   transport identical values and every determinism contract carries
//!   across protocols;
//! - [`frame`] — framing in both flavours: the legacy
//!   one-JSON-object-per-line mode, and varint length-prefixed binary
//!   frames with correlation ids, negotiated by a 3-byte hello; plus
//!   [`frame::Payload`], the render-once response body both protocols
//!   replay verbatim;
//! - [`proto`] — client connections: protocol negotiation with JSON
//!   fallback, connection reuse, request pipelining with correlation
//!   ids, and per-connection traffic counters;
//! - [`net`] — the non-blocking poll-based server core (one I/O thread
//!   over nonblocking sockets) that `salsa-serve` and the cluster
//!   coordinator both run on, with per-connection buffers, bounded
//!   in-flight limits and idle-timeout eviction;
//! - [`backoff`] — seeded, jittered exponential backoff for retry loops
//!   (backpressure resubmission, worker reconnects), deterministic per
//!   seed so load-generator runs stay reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod binary;
pub mod frame;
pub mod json;
pub mod net;
pub mod proto;

pub use backoff::Backoff;
pub use frame::{read_json_line, roundtrip, write_json_line, LineReader, Payload, Polled};
pub use json::{parse_json, Json, JsonError};
pub use net::{Handler, Incoming, NetConfig, NetMetrics, NetServer, ReplyHandle};
pub use proto::{Connection, Protocol, WireCounts};
