//! Compact binary encoding of the [`Json`] document model.
//!
//! The binary protocol transports exactly the same values as the
//! newline-JSON protocol — a [`Json`] tree in, the identical [`Json`]
//! tree out — so every determinism contract that holds for the text
//! protocol (byte-replay caches, bit-exact cluster reduction, canonical
//! report diffs) holds across protocols for free: both sides render
//! reports from the same document with the same serializer.
//!
//! Encoding, one tag byte per node:
//!
//! | tag | value   | payload                                            |
//! |-----|---------|----------------------------------------------------|
//! | 0   | null    | —                                                  |
//! | 1   | false   | —                                                  |
//! | 2   | true    | —                                                  |
//! | 3   | int     | zigzag(i64) as LEB128 varint                       |
//! | 4   | float   | 8 bytes, IEEE-754 bits little-endian               |
//! | 5   | string  | varint byte length + UTF-8 bytes                   |
//! | 6   | array   | varint count + that many encoded values            |
//! | 7   | object  | varint count + (varint key length + key, value)*   |
//!
//! Integers round-trip exactly (zigzag over the full `i64` domain) and
//! floats round-trip bit-for-bit (raw IEEE bits, no text formatting), so
//! `decode(encode(x)) == x` for every well-formed document.
//!
//! Decoding is defensive: every length is checked against the bytes
//! actually present before any allocation sizing trusts it, nesting depth
//! is capped, and all failures come back as a structured [`CodecError`]
//! with the byte offset of the offending token — corrupt input can never
//! panic or over-allocate.

use crate::json::Json;

/// Nesting depth cap for decoded documents. Service messages are a few
/// levels deep; anything beyond this is corrupt or hostile input.
pub const MAX_DEPTH: usize = 64;

/// A structured decode failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset into the buffer at which decoding failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl CodecError {
    fn new(offset: usize, message: impl Into<String>) -> CodecError {
        CodecError { offset, message: message.into() }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary codec error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CodecError {}

/// Appends `value` as an LEB128 varint (7 bits per byte, high bit set on
/// continuation bytes; at most 10 bytes for a full `u64`).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf[*pos..]`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let start = *pos;
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(CodecError::new(start, "truncated varint"));
        };
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::new(start, "varint overflows u64"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::new(start, "varint longer than 10 bytes"));
        }
    }
}

/// Zigzag-maps a signed integer onto the unsigned varint domain, so small
/// magnitudes of either sign encode in few bytes.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARR: u8 = 6;
const TAG_OBJ: u8 = 7;

/// Appends the binary encoding of `value` to `out`.
pub fn encode_into(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(TAG_NULL),
        Json::Bool(false) => out.push(TAG_FALSE),
        Json::Bool(true) => out.push(TAG_TRUE),
        Json::Int(i) => {
            out.push(TAG_INT);
            write_varint(out, zigzag(*i));
        }
        Json::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Json::Str(s) => {
            out.push(TAG_STR);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            out.push(TAG_ARR);
            write_varint(out, items.len() as u64);
            for item in items {
                encode_into(item, out);
            }
        }
        Json::Obj(entries) => {
            out.push(TAG_OBJ);
            write_varint(out, entries.len() as u64);
            for (key, item) in entries {
                write_varint(out, key.len() as u64);
                out.extend_from_slice(key.as_bytes());
                encode_into(item, out);
            }
        }
    }
}

/// Encodes `value` into a fresh buffer.
pub fn encode(value: &Json) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(value, &mut out);
    out
}

/// Decodes one document from the whole of `buf`; trailing bytes after the
/// document are an error (a frame carries exactly one document).
pub fn decode(buf: &[u8]) -> Result<Json, CodecError> {
    let mut pos = 0usize;
    let value = decode_at(buf, &mut pos, 0)?;
    if pos != buf.len() {
        return Err(CodecError::new(pos, format!("{} trailing bytes after document", buf.len() - pos)));
    }
    Ok(value)
}

/// Decodes one document from `buf[*pos..]`, advancing `*pos` past it.
pub fn decode_at(buf: &[u8], pos: &mut usize, depth: usize) -> Result<Json, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::new(*pos, "nesting deeper than MAX_DEPTH"));
    }
    let at = *pos;
    let Some(&tag) = buf.get(at) else {
        return Err(CodecError::new(at, "truncated document: missing tag"));
    };
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Json::Null),
        TAG_FALSE => Ok(Json::Bool(false)),
        TAG_TRUE => Ok(Json::Bool(true)),
        TAG_INT => Ok(Json::Int(unzigzag(read_varint(buf, pos)?))),
        TAG_FLOAT => {
            let Some(bytes) = buf.get(*pos..*pos + 8) else {
                return Err(CodecError::new(*pos, "truncated float"));
            };
            let bits = u64::from_le_bytes(bytes.try_into().expect("slice is 8 bytes"));
            *pos += 8;
            Ok(Json::Float(f64::from_bits(bits)))
        }
        TAG_STR => Ok(Json::Str(decode_string(buf, pos)?)),
        TAG_ARR => {
            let count = checked_count(buf, pos)?;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                items.push(decode_at(buf, pos, depth + 1)?);
            }
            Ok(Json::Arr(items))
        }
        TAG_OBJ => {
            let count = checked_count(buf, pos)?;
            let mut entries = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let key = decode_string(buf, pos)?;
                let value = decode_at(buf, pos, depth + 1)?;
                entries.push((key, value));
            }
            Ok(Json::Obj(entries))
        }
        other => Err(CodecError::new(at, format!("unknown tag byte 0x{other:02x}"))),
    }
}

/// Reads a count varint and sanity-checks it against the bytes actually
/// remaining (every element needs at least one byte), so corrupt counts
/// cannot drive huge allocations or long loops.
fn checked_count(buf: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let at = *pos;
    let count = read_varint(buf, pos)?;
    let remaining = (buf.len() - *pos) as u64;
    if count > remaining {
        return Err(CodecError::new(at, format!("count {count} exceeds {remaining} remaining bytes")));
    }
    Ok(count as usize)
}

fn decode_string(buf: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let at = *pos;
    let len = read_varint(buf, pos)?;
    let remaining = (buf.len() - *pos) as u64;
    if len > remaining {
        return Err(CodecError::new(at, format!("string length {len} exceeds {remaining} remaining bytes")));
    }
    let end = *pos + len as usize;
    let text = std::str::from_utf8(&buf[*pos..end])
        .map_err(|e| CodecError::new(*pos + e.valid_up_to(), "string is not valid UTF-8"))?;
    let owned = text.to_string();
    *pos = end;
    Ok(owned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn varints_roundtrip_at_the_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_covers_the_full_domain() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn documents_roundtrip_exactly() {
        let doc = parse_json(
            r#"{"cmd":"allocate","graph":"cdfg ewf\nop a = add b c\n","knobs":{"steps":19,"seed":-7,"cutoff":null,"pipelined":false,"rate":0.52},"tags":["a","b",3,4.0]}"#,
        )
        .unwrap();
        let bytes = encode(&doc);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, doc);
        // Compact text is the determinism contract's surface: identical too.
        assert_eq!(back.to_string_compact(), doc.to_string_compact());
    }

    #[test]
    fn audit_lane_documents_roundtrip_exactly() {
        // The verification-as-a-service surface: a request carrying the
        // per-job `verify` knob, a certified response (float `verify_ms`
        // must survive bit-for-bit — the canonicalizer, not the codec,
        // is what zeroes it), and the `trace` verb with its artifact.
        // Offline audit byte-diffs reports fetched over either protocol,
        // so the compact text must come back identical too.
        for raw in [
            r#"{"cmd":"allocate","bench":"ewf","seed":1,"restarts":2,"verify":"full"}"#,
            r#"{"status":"ok","report":{"cost":2315,"certificate":{"verdict":"certified","mode":"full","verify_ms":96.593347,"trace_id":"4741f1f2b13990270848578bea51c16d","cache":"miss","commits":15922}}}"#,
            r#"{"cmd":"trace","id":"4741f1f2b13990270848578bea51c16d"}"#,
            r#"{"status":"ok","artifact":{"design":"cdfg ewf\n","cost":2315,"trace":"salsa-trace/1 base=2378 slot=1\n!\n"}}"#,
        ] {
            let doc = parse_json(raw).unwrap();
            let back = decode(&encode(&doc)).unwrap();
            assert_eq!(back, doc);
            assert_eq!(back.to_string_compact(), doc.to_string_compact());
        }
    }

    #[test]
    fn truncations_error_cleanly() {
        let doc = parse_json(r#"{"a":[1,2.5,"xyz"],"b":true}"#).unwrap();
        let bytes = encode(&doc);
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(err.offset <= cut, "offset {} past cut {}", err.offset, cut);
        }
    }

    #[test]
    fn corrupt_counts_do_not_allocate() {
        // Array claiming u64::MAX elements with no bytes behind it.
        let mut buf = vec![TAG_ARR];
        write_varint(&mut buf, u64::MAX);
        let err = decode(&buf).unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Json::Int(5));
        bytes.push(0);
        let err = decode(&bytes).unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn invalid_utf8_is_an_error_not_a_panic() {
        let mut buf = vec![TAG_STR];
        write_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = decode(&buf).unwrap_err();
        assert!(err.message.contains("UTF-8"));
    }
}
