//! A non-blocking, poll-based server core (std-only).
//!
//! Both services used to burn one blocking thread per connection; this
//! module replaces that with a single I/O thread driving every
//! connection through nonblocking sockets: accept, classify the protocol
//! from the first byte (binary hello vs. JSON line), buffer reads,
//! parse complete messages, dispatch them to an app handler, and flush
//! queued responses — all from one readiness loop with a short idle
//! tick. The std library has no portable readiness API, so the loop is a
//! scan over the (small) connection registry with `WouldBlock` as the
//! readiness signal; per iteration it does strictly bounded work per
//! connection, and it only sleeps when a full pass made no progress.
//!
//! Responses flow through [`ReplyHandle`]s. A handler either replies
//! synchronously (cache hits, stats, coordinator verbs) or moves the
//! handle into a job for a worker pool to complete later; the loop
//! drains completed replies into per-connection write buffers on its
//! next pass. Line-mode connections carry no correlation ids, so their
//! responses are written strictly in request (sequence) order; binary
//! connections write completions as they land, tagged with the request's
//! correlation id — that is what makes pipelining safe on both.
//!
//! Per-connection bounds: a read-buffer cap (no unbounded lines or
//! frames), an in-flight request limit answered with the app's
//! backpressure reply, and idle-timeout eviction for connections with no
//! traffic and no pending work. A dropped [`ReplyHandle`] (a job lost on
//! a closed queue, a panicked worker) completes its slot with a
//! structured internal error rather than leaving the client hanging.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::frame::{self, Payload, MAGIC, MAX_FRAME, WIRE_VERSION};
use crate::json::{parse_json, Json};

/// Tuning for one [`NetServer`].
pub struct NetConfig {
    /// Cooperative shutdown flag: the app sets it (usually from a
    /// handler) and the loop stops accepting, drains, and exits.
    pub shutdown: Arc<AtomicBool>,
    /// Max requests in flight per connection before the core answers
    /// with `busy_reply` instead of dispatching. `0` disables the limit.
    pub max_in_flight: usize,
    /// Immediate reply for over-limit requests (the app's backpressure
    /// shape). Required when `max_in_flight > 0`.
    pub busy_reply: Option<Json>,
    /// Evict connections with no traffic and no pending work for this
    /// long. `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// After shutdown is flagged, keep answering already-connected peers
    /// for at least this long (lets cluster workers observe the
    /// `shutdown` status) before the drain-exit condition applies.
    pub shutdown_linger: Duration,
    /// Sleep between passes that made no progress.
    pub tick: Duration,
    /// Wire counters, shared so the app can surface them (e.g. in a
    /// `stats` verb). A fresh default is fine when nobody else reads it.
    pub metrics: Arc<NetMetrics>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            shutdown: Arc::new(AtomicBool::new(false)),
            max_in_flight: 0,
            busy_reply: None,
            idle_timeout: Some(Duration::from_secs(60)),
            shutdown_linger: Duration::from_millis(0),
            tick: Duration::from_millis(1),
            metrics: Arc::new(NetMetrics::default()),
        }
    }
}

/// Server-wide wire counters (atomics; read them directly).
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Bytes read off client sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to client sockets.
    pub bytes_out: AtomicU64,
    /// Messages (frames or lines) received.
    pub frames_in: AtomicU64,
    /// Messages (frames or lines) sent.
    pub frames_out: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub conns_opened: AtomicU64,
    /// Connections currently registered.
    pub conns_active: AtomicU64,
    /// Connections evicted by the idle timeout.
    pub idle_evicted: AtomicU64,
}

/// An incoming message: parsed document, or the parse failure text for
/// the app to shape into its own structured error (line mode only —
/// binary framing errors are fatal to the connection).
pub type Incoming = Result<Json, String>;

/// The app-side dispatch callback, run on the I/O thread. Reply
/// synchronously via the handle, or move the handle into a job.
pub type Handler = Box<dyn FnMut(Incoming, ReplyHandle) + Send>;

/// Completed replies queued by handles, drained by the I/O loop.
struct Outbox {
    completed: Mutex<Vec<(u64, Arc<Payload>, bool)>>,
}

/// The write side of one request slot. Send exactly one reply; dropping
/// the handle unsent produces a structured internal error instead.
pub struct ReplyHandle {
    outbox: Weak<Outbox>,
    seq: u64,
    sent: bool,
}

impl ReplyHandle {
    /// Completes the request with `payload`.
    pub fn send(mut self, payload: Arc<Payload>) {
        self.deliver(payload, false);
    }

    /// Completes the request and closes the connection once flushed
    /// (the `shutdown` acknowledgement path).
    pub fn send_then_close(mut self, payload: Arc<Payload>) {
        self.deliver(payload, true);
    }

    fn deliver(&mut self, payload: Arc<Payload>, close: bool) {
        self.sent = true;
        if let Some(outbox) = self.outbox.upgrade() {
            outbox.completed.lock().expect("outbox lock").push((self.seq, payload, close));
        }
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if !self.sent {
            let error = parse_json(
                r#"{"status":"error","error":{"kind":"internal","message":"request dropped without a reply"}}"#,
            )
            .expect("static error json");
            self.deliver(Arc::new(Payload::new(error)), false);
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// First bytes not yet seen.
    Unclassified,
    Json,
    Binary,
}

struct Slot {
    seq: u64,
    /// Correlation id (binary mode; line mode replies carry no id).
    id: u64,
    done: Option<(Arc<Payload>, bool)>,
}

struct Conn {
    stream: TcpStream,
    mode: Mode,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    slots: Vec<Slot>,
    next_seq: u64,
    outbox: Arc<Outbox>,
    last_activity: Instant,
    /// Stop reading; flush what is queued, then close.
    closing: bool,
}

/// A running poll-based server: one I/O thread, many connections.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<NetMetrics>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` and starts the I/O thread.
    pub fn bind(addr: &str, config: NetConfig, handler: Handler) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let metrics = Arc::clone(&config.metrics);
        let shutdown = Arc::clone(&config.shutdown);
        let loop_metrics = Arc::clone(&metrics);
        let thread = std::thread::Builder::new()
            .name("net-io".into())
            .spawn(move || io_loop(listener, config, handler, loop_metrics))
            .expect("spawn net-io thread");
        Ok(NetServer { addr: local, shutdown, metrics, thread: Some(thread) })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cooperative shutdown flag (same Arc as in the config).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The server-wide wire counters.
    pub fn metrics(&self) -> Arc<NetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Waits for the I/O loop to drain and exit (after shutdown).
    pub fn join(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Read-buffer cap: one max frame plus framing slack.
const RBUF_CAP: usize = MAX_FRAME + 1024;
/// Per-pass read chunk.
const READ_CHUNK: usize = 64 * 1024;

fn io_loop(listener: TcpListener, mut config: NetConfig, mut handler: Handler, metrics: Arc<NetMetrics>) {
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = 0u64;
    let mut shutdown_at: Option<Instant> = None;
    let mut scratch = vec![0u8; READ_CHUNK];

    loop {
        let mut progress = false;
        let shutting_down = config.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            if shutdown_at.is_none() {
                shutdown_at = Some(Instant::now());
            }
            // Refuse new connections immediately: drop the listener so
            // post-shutdown connects are refused, not silently queued.
            if listener.take().is_some() {
                progress = true;
            }
        }

        if let Some(l) = listener.as_ref() {
            loop {
                match l.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        metrics.conns_opened.fetch_add(1, Ordering::Relaxed);
                        conns.insert(
                            next_token,
                            Conn {
                                stream,
                                mode: Mode::Unclassified,
                                rbuf: Vec::new(),
                                wbuf: Vec::new(),
                                slots: Vec::new(),
                                next_seq: 0,
                                outbox: Arc::new(Outbox { completed: Mutex::new(Vec::new()) }),
                                last_activity: Instant::now(),
                                closing: false,
                            },
                        );
                        next_token += 1;
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        let now = Instant::now();
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            match drive_conn(conn, &mut config, &mut handler, &metrics, &mut scratch, now) {
                Ok(made_progress) => progress |= made_progress,
                Err(_) => {
                    dead.push(token);
                    progress = true;
                }
            }
            if conn.closing && conn.wbuf.is_empty() {
                dead.push(token);
                progress = true;
            }
        }
        for token in dead {
            conns.remove(&token);
        }
        metrics.conns_active.store(conns.len() as u64, Ordering::Relaxed);

        if shutting_down {
            let lingered =
                shutdown_at.map(|at| now.duration_since(at) >= config.shutdown_linger).unwrap_or(true);
            let drained = conns.values().all(|c| c.slots.is_empty() && c.wbuf.is_empty());
            if lingered && drained {
                return;
            }
        }

        if !progress {
            std::thread::sleep(config.tick);
        }
    }
}

/// One pass over one connection: drain completed replies, read, parse
/// and dispatch complete messages, stage writable responses, write.
/// `Err` means the connection is gone (or protocol-fatal) and must be
/// dropped.
fn drive_conn(
    conn: &mut Conn,
    config: &mut NetConfig,
    handler: &mut Handler,
    metrics: &NetMetrics,
    scratch: &mut [u8],
    now: Instant,
) -> io::Result<bool> {
    let mut progress = false;

    // 1. Replies completed by handles since the last pass.
    {
        let mut completed = conn.outbox.completed.lock().expect("outbox lock");
        for (seq, payload, close) in completed.drain(..) {
            if let Some(slot) = conn.slots.iter_mut().find(|s| s.seq == seq) {
                slot.done = Some((payload, close));
                progress = true;
            }
        }
    }

    // 2. Read what the socket has (bounded per pass).
    if !conn.closing {
        loop {
            if conn.rbuf.len() >= RBUF_CAP {
                // A line or frame larger than the cap: protocol-fatal.
                return Err(io::Error::new(io::ErrorKind::InvalidData, "read buffer cap exceeded"));
            }
            match conn.stream.read(scratch) {
                Ok(0) => {
                    // Peer finished sending. Serve what is in flight,
                    // flush, then close.
                    conn.closing = true;
                    progress = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    metrics.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    conn.last_activity = now;
                    progress = true;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    // 3. Classify a fresh connection from its first byte.
    if conn.mode == Mode::Unclassified && !conn.rbuf.is_empty() {
        if conn.rbuf[0] == MAGIC {
            if conn.rbuf.len() < 3 {
                // Hello still arriving.
            } else {
                if conn.rbuf[2] != b'\n' || conn.rbuf[1] == 0 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed binary hello"));
                }
                let version = conn.rbuf[1].min(WIRE_VERSION);
                conn.rbuf.drain(..3);
                conn.wbuf.extend_from_slice(&[MAGIC, version, b'\n']);
                conn.mode = Mode::Binary;
                progress = true;
            }
        } else {
            conn.mode = Mode::Json;
            progress = true;
        }
    }

    // 4. Parse and dispatch complete messages.
    loop {
        let incoming: Option<(u64, Incoming)> = match conn.mode {
            Mode::Unclassified => None,
            Mode::Json => match take_line(&mut conn.rbuf) {
                None => None,
                Some(line) => {
                    let text = String::from_utf8_lossy(&line);
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    Some((0, parse_json(trimmed).map_err(|e| e.to_string())))
                }
            },
            Mode::Binary => match frame::split_frame(&conn.rbuf) {
                Ok(None) => None,
                Ok(Some((consumed, id, doc))) => {
                    conn.rbuf.drain(..consumed);
                    Some((id, Ok(doc)))
                }
                Err(e) => {
                    // Framing is unrecoverable: best-effort error frame
                    // on reserved id 0, then drop the connection.
                    let error = Json::Obj(vec![
                        ("status".into(), Json::Str("error".into())),
                        (
                            "error".into(),
                            Json::Obj(vec![
                                ("kind".into(), Json::Str("bad-frame".into())),
                                ("message".into(), Json::Str(e.to_string())),
                            ]),
                        ),
                    ]);
                    let payload = Payload::new(error);
                    frame::append_frame(&mut conn.wbuf, 0, payload.bin());
                    flush_wbuf(conn, metrics)?;
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            },
        };
        let Some((id, incoming)) = incoming else { break };
        metrics.frames_in.fetch_add(1, Ordering::Relaxed);
        progress = true;

        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.slots.push(Slot { seq, id, done: None });
        let handle = ReplyHandle { outbox: Arc::downgrade(&conn.outbox), seq, sent: false };
        let over_limit = config.max_in_flight > 0 && conn.slots.len() > config.max_in_flight;
        if over_limit {
            if let Some(busy) = config.busy_reply.clone() {
                handle.send(Arc::new(Payload::new(busy)));
                continue;
            }
        }
        handler(incoming, handle);
    }

    // 5. Stage completed replies into the write buffer.
    {
        // Drain handles that completed synchronously in step 4.
        let mut completed = conn.outbox.completed.lock().expect("outbox lock");
        for (seq, payload, close) in completed.drain(..) {
            if let Some(slot) = conn.slots.iter_mut().find(|s| s.seq == seq) {
                slot.done = Some((payload, close));
            }
        }
    }
    match conn.mode {
        Mode::Json => {
            // No correlation ids on the wire: strictly sequence order.
            while let Some(first) = conn.slots.first() {
                if first.done.is_none() {
                    break;
                }
                let slot = conn.slots.remove(0);
                let (payload, close) = slot.done.expect("checked done");
                conn.wbuf.extend_from_slice(payload.text().as_bytes());
                conn.wbuf.push(b'\n');
                metrics.frames_out.fetch_add(1, Ordering::Relaxed);
                if close {
                    conn.closing = true;
                }
                progress = true;
            }
        }
        Mode::Binary => {
            // Completion order, tagged with correlation ids.
            let mut i = 0;
            while i < conn.slots.len() {
                if conn.slots[i].done.is_some() {
                    let slot = conn.slots.remove(i);
                    let (payload, close) = slot.done.expect("checked done");
                    frame::append_frame(&mut conn.wbuf, slot.id, payload.bin());
                    metrics.frames_out.fetch_add(1, Ordering::Relaxed);
                    if close {
                        conn.closing = true;
                    }
                    progress = true;
                } else {
                    i += 1;
                }
            }
        }
        Mode::Unclassified => {}
    }

    // 6. Flush.
    if !conn.wbuf.is_empty() {
        progress |= flush_wbuf(conn, metrics)?;
        if !conn.wbuf.is_empty() {
            conn.last_activity = now;
        }
    }

    // 7. Idle eviction: no pending work, no buffered bytes, long quiet.
    if let Some(idle) = config.idle_timeout {
        if conn.slots.is_empty()
            && conn.wbuf.is_empty()
            && conn.rbuf.is_empty()
            && now.duration_since(conn.last_activity) >= idle
        {
            metrics.idle_evicted.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(io::ErrorKind::TimedOut, "idle timeout"));
        }
    }

    Ok(progress)
}

fn flush_wbuf(conn: &mut Conn, metrics: &NetMetrics) -> io::Result<bool> {
    let mut written = 0usize;
    let result = loop {
        if written == conn.wbuf.len() {
            break Ok(());
        }
        match conn.stream.write(&conn.wbuf[written..]) {
            Ok(0) => break Err(io::Error::new(io::ErrorKind::WriteZero, "socket closed")),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => break Err(e),
        }
    };
    if written > 0 {
        conn.wbuf.drain(..written);
        metrics.bytes_out.fetch_add(written as u64, Ordering::Relaxed);
    }
    result.map(|()| written > 0)
}

/// Removes and returns the first newline-terminated line from `buf`
/// (without the newline), if one is complete.
fn take_line(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    let at = buf.iter().position(|&b| b == b'\n')?;
    let mut line: Vec<u8> = buf.drain(..=at).collect();
    line.pop();
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Connection, Protocol};

    fn echo_server(max_in_flight: usize, busy: Option<Json>) -> NetServer {
        let config = NetConfig {
            max_in_flight,
            busy_reply: busy,
            idle_timeout: Some(Duration::from_secs(30)),
            ..NetConfig::default()
        };
        let handler: Handler = Box::new(|incoming, handle| match incoming {
            Ok(doc) => handle.send(Arc::new(Payload::new(doc))),
            Err(msg) => {
                let error = Json::Obj(vec![
                    ("status".into(), Json::Str("error".into())),
                    ("message".into(), Json::Str(msg)),
                ]);
                handle.send(Arc::new(Payload::new(error)));
            }
        });
        NetServer::bind("127.0.0.1:0", config, handler).unwrap()
    }

    #[test]
    fn serves_json_and_binary_clients_side_by_side() {
        let server = echo_server(0, None);
        let addr = server.local_addr().to_string();
        let request = parse_json(r#"{"cmd":"ping","n":1}"#).unwrap();

        let mut json_conn = Connection::connect(&addr, Protocol::Json).unwrap();
        let mut bin_conn = Connection::connect(&addr, Protocol::Binary).unwrap();
        assert_eq!(bin_conn.mode_name(), "binary");
        assert_eq!(json_conn.call(&request).unwrap(), request);
        assert_eq!(bin_conn.call(&request).unwrap(), request);

        let metrics = server.metrics();
        assert_eq!(metrics.frames_in.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.conns_opened.load(Ordering::Relaxed), 2);
        server.shutdown_flag().store(true, Ordering::SeqCst);
        server.join();
    }

    #[test]
    fn pipelined_requests_come_back_in_order_per_protocol() {
        let server = echo_server(0, None);
        let addr = server.local_addr().to_string();
        for protocol in [Protocol::Json, Protocol::Binary] {
            let mut conn = Connection::connect(&addr, protocol).unwrap();
            let ids: Vec<u64> = (0..8)
                .map(|n| conn.send(&Json::Obj(vec![("n".into(), Json::Int(n))])).unwrap())
                .collect();
            for (n, id) in ids.iter().enumerate() {
                let doc = conn.recv_for(*id).unwrap();
                assert_eq!(doc.get("n").and_then(Json::as_i64), Some(n as i64));
            }
        }
    }

    #[test]
    fn over_limit_requests_get_the_busy_reply() {
        let busy = parse_json(r#"{"status":"rejected"}"#).unwrap();
        // Echo replies synchronously, so in-flight never exceeds 1 from
        // the server's view per message; use a handler that never
        // replies to pile slots up instead.
        let config = NetConfig {
            max_in_flight: 2,
            busy_reply: Some(busy),
            ..NetConfig::default()
        };
        let parked: Arc<Mutex<Vec<ReplyHandle>>> = Arc::new(Mutex::new(Vec::new()));
        let parked_in = Arc::clone(&parked);
        let handler: Handler = Box::new(move |incoming, handle| {
            let _ = incoming;
            parked_in.lock().unwrap().push(handle);
        });
        let server = NetServer::bind("127.0.0.1:0", config, handler).unwrap();
        let mut conn =
            Connection::connect(&server.local_addr().to_string(), Protocol::Binary).unwrap();
        let a = conn.send(&parse_json(r#"{"n":1}"#).unwrap()).unwrap();
        let b = conn.send(&parse_json(r#"{"n":2}"#).unwrap()).unwrap();
        let c = conn.send(&parse_json(r#"{"n":3}"#).unwrap()).unwrap();
        // The third is over the limit: busy reply, out of order is fine.
        let doc = conn.recv_for(c).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("rejected"));
        // Release the parked two so the server can drain and exit.
        {
            let mut handles = parked.lock().unwrap();
            for handle in handles.drain(..) {
                handle.send(Arc::new(Payload::new(parse_json(r#"{"status":"ok"}"#).unwrap())));
            }
        }
        assert!(conn.recv_for(a).is_ok());
        assert!(conn.recv_for(b).is_ok());
    }

    #[test]
    fn corrupt_binary_frame_gets_error_frame_then_close() {
        let server = echo_server(0, None);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&[MAGIC, WIRE_VERSION, b'\n']).unwrap();
        let mut hello = [0u8; 3];
        stream.read_exact(&mut hello).unwrap();
        assert_eq!(hello[0], MAGIC);
        // A frame whose body is garbage (unknown tag).
        stream.write_all(&[3, 1, 0xff, 0xff]).unwrap();
        stream.flush().unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let (_, id, doc) = frame::split_frame(&reply).unwrap().expect("error frame");
        assert_eq!(id, 0, "connection-level error id");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("error"));
    }

    #[test]
    fn idle_connections_are_evicted() {
        let config = NetConfig {
            idle_timeout: Some(Duration::from_millis(50)),
            ..NetConfig::default()
        };
        let handler: Handler = Box::new(|_, handle| {
            handle.send(Arc::new(Payload::new(Json::Null)));
        });
        let server = NetServer::bind("127.0.0.1:0", config, handler).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut buf = [0u8; 8];
        // The server closes the quiet socket: read returns 0.
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(stream.read(&mut buf).unwrap(), 0);
        assert_eq!(server.metrics().idle_evicted.load(Ordering::Relaxed), 1);
    }
}
