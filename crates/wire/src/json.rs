//! A minimal JSON document model with parser and writer.
//!
//! The workspace has a hard no-external-dependencies policy (the build
//! environment has no network or registry cache), so the wire format is
//! implemented here from scratch: the subset of JSON the protocol needs —
//! which is all of JSON except non-finite numbers — with two deliberate
//! choices:
//!
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map).
//!   Serialization is therefore deterministic, which the result cache's
//!   byte-identical replay property relies on.
//! * **Numbers distinguish integers from floats.** Search seeds are
//!   `u64`-ish and latencies are fractional; collapsing both into `f64`
//!   would silently round large seeds.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer written without decimal point or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from pairs (a terser literal at call sites).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` on other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer coercion: `Int` directly, `Float` when it is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            _ => None,
        }
    }

    /// Non-negative integer coercion.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Float coercion (`Int` widens).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_json(&mut out, self);
        out
    }

    /// Serializes with two-space indentation, for human consumption.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, f: f64) {
    if f.is_finite() {
        // Shortest roundtrip formatting; integral floats keep a ".0" so
        // they reparse as Float.
        if f.fract() == 0.0 && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf.
    }
}

fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => write_number(out, *f),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_json(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Json, indent: usize) {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + 1);
                write_pretty(out, item, indent + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            pad(out, indent);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
            }
            pad(out, indent);
            out.push('}');
        }
        other => write_json(out, other),
    }
}

/// A JSON parse failure with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let len = utf8_len(s[0]);
                    let chunk = std::str::from_utf8(&s[..len.min(s.len())])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError { offset: start, message: format!("bad number '{text}'") })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_documents() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"-42"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[true,null],"c":{"d":"e"}}"#,
            r#""hi\nthere\"quoted\"""#,
        ];
        for case in cases {
            let v = parse_json(case).unwrap();
            assert_eq!(parse_json(&v.to_string_compact()).unwrap(), v, "{case}");
        }
    }

    #[test]
    fn preserves_key_order() {
        let v = parse_json(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.to_string_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn integers_and_floats_are_distinct() {
        assert_eq!(parse_json("7").unwrap(), Json::Int(7));
        assert_eq!(parse_json("7.5").unwrap(), Json::Float(7.5));
        assert_eq!(Json::Int(7).to_string_compact(), "7");
        assert_eq!(Json::Float(7.0).to_string_compact(), "7.0");
        assert_eq!(parse_json("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::Str("line\nbreak \"q\" \\ tab\t end \u{1F600}".to_string());
        let text = original.to_string_compact();
        assert_eq!(parse_json(&text).unwrap(), original);
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(
            parse_json(r#""A é 😀""#).unwrap(),
            Json::Str("A \u{e9} \u{1F600}".to_string())
        );
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            parse_json("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("A\u{e9}\u{1F600}".to_string())
        );
    }

    #[test]
    fn hostile_inputs_error_cleanly() {
        for bad in [
            "", "{", "}", "[1,", r#"{"a"}"#, r#"{"a":}"#, "tru", "nul", "\"abc", "1.2.3",
            "[1 2]", r#""\q""#, r#""\u12""#, "{\"a\":1}x",
        ] {
            assert!(parse_json(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = parse_json(r#"{"n":3,"f":2.5,"s":"x","b":true}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("f").and_then(Json::as_i64), None);
    }
}
