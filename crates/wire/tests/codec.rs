//! Property/fuzz coverage for the binary codec and framing layers.
//!
//! The contract under test: random documents round-trip exactly through
//! the binary codec (and produce the same compact text afterwards — the
//! surface the determinism contracts pin); truncated, bit-flipped, or
//! oversized inputs come back as structured errors, never a panic, an
//! over-allocation, or an infinite loop.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use salsa_wire::binary::{decode, encode, read_varint, unzigzag, write_varint, zigzag};
use salsa_wire::frame::{append_frame, split_frame, MAX_FRAME};
use salsa_wire::json::Json;

/// A random document, depth-bounded, biased toward the shapes the
/// services actually exchange (objects of scalars with some nesting).
fn arb_json(rng: &mut StdRng, depth: usize) -> Json {
    let roll = if depth == 0 { rng.gen_range(0..5u32) } else { rng.gen_range(0..7u32) };
    match roll {
        0 => Json::Null,
        1 => Json::Bool(rng.gen()),
        2 => Json::Int(unzigzag(rng.gen())),
        3 => {
            // Finite floats only: NaN breaks PartialEq, and the JSON
            // text protocol cannot carry non-finite values anyway.
            let f = f64::from_bits(rng.gen());
            Json::Float(if f.is_finite() { f } else { rng.gen_range(-1.0e9..1.0e9) })
        }
        4 => Json::Str(arb_string(rng)),
        5 => {
            let n = rng.gen_range(0..5usize);
            Json::Arr((0..n).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..5usize);
            Json::Obj((0..n).map(|i| (format!("k{i}_{}", arb_string(rng)), arb_json(rng, depth - 1))).collect())
        }
    }
}

fn arb_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| {
            // Mix ASCII, multi-byte chars, escapes and newlines (the CDFG
            // text payloads are newline-heavy).
            match rng.gen_range(0..6u32) {
                0 => '\n',
                1 => '"',
                2 => '\\',
                3 => 'µ',
                4 => '語',
                _ => char::from(rng.gen_range(0x20..0x7fu32) as u8),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    /// decode(encode(doc)) == doc, and the compact-text rendering (the
    /// byte surface canonical reports live on) is unchanged by the trip.
    #[test]
    fn random_documents_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = arb_json(&mut rng, 4);
        let bytes = encode(&doc);
        let back = decode(&bytes).expect("well-formed encoding decodes");
        prop_assert_eq!(&back, &doc);
        prop_assert_eq!(back.to_string_compact(), doc.to_string_compact());
    }

    /// Every proper prefix of a valid encoding is a structured error
    /// (the document's extent is fixed, so a cut can't decode cleanly).
    #[test]
    fn truncations_are_structured_errors(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = arb_json(&mut rng, 3);
        let bytes = encode(&doc);
        let cut = rng.gen_range(0..bytes.len().max(1));
        let err = decode(&bytes[..cut]).expect_err("prefix must not decode");
        prop_assert!(err.offset <= cut);
        prop_assert!(!err.message.is_empty());
    }

    /// A single flipped byte either still decodes (to something) or
    /// errors cleanly — never a panic, hang, or huge allocation.
    #[test]
    fn bit_flips_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = arb_json(&mut rng, 3);
        let mut bytes = encode(&doc);
        let at = rng.gen_range(0..bytes.len());
        bytes[at] ^= 1 << rng.gen_range(0..8u32);
        let _ = decode(&bytes);
    }

    /// Pure garbage through the frame scanner: `Ok(None)` (need more
    /// bytes), a parsed frame, or a structured error — never a panic.
    #[test]
    fn garbage_frames_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..64usize);
        let garbage: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect();
        let _ = split_frame(&garbage);
    }

    /// Frames round-trip through the incremental scanner at any split
    /// point, and prefixes are always "still arriving", never errors.
    #[test]
    fn frames_reassemble_from_any_split(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = arb_json(&mut rng, 3);
        let id = rng.gen::<u64>() >> rng.gen_range(0..64u32);
        let mut wire = Vec::new();
        append_frame(&mut wire, id, &encode(&doc));
        let cut = rng.gen_range(0..wire.len());
        prop_assert!(matches!(split_frame(&wire[..cut]), Ok(None)));
        let (consumed, got_id, got) = split_frame(&wire).unwrap().expect("whole frame");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, doc);
    }

    /// Varints round-trip over the full u64 domain, zigzag over i64.
    #[test]
    fn varints_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
        let i = unzigzag(v);
        prop_assert_eq!(zigzag(i), v);
    }
}

#[test]
fn oversized_frame_lengths_are_rejected_up_front() {
    // The scanner must refuse the declared length before ever waiting
    // for (or allocating) that many bytes.
    for oversize in [MAX_FRAME as u64 + 1, u64::MAX / 2, u64::MAX] {
        let mut wire = Vec::new();
        write_varint(&mut wire, oversize);
        wire.extend_from_slice(&[0u8; 16]);
        let err = split_frame(&wire).expect_err("oversized length must error");
        assert!(err.message.contains("MAX_FRAME"), "{}", err.message);
    }
}

#[test]
fn deep_nesting_is_capped_not_a_stack_overflow() {
    let mut doc = Json::Int(1);
    for _ in 0..200 {
        doc = Json::Arr(vec![doc]);
    }
    let bytes = encode(&doc);
    let err = decode(&bytes).expect_err("200 levels exceeds MAX_DEPTH");
    assert!(err.message.contains("MAX_DEPTH"));
}
