//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the benchmarking interface it uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`/`finish`),
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simpler than upstream criterion — per sample the routine
//! runs enough iterations to cover a minimum sample window, and the harness
//! reports mean/min/max nanoseconds per iteration over the collected
//! samples — but it is steady enough for the before/after comparisons this
//! repo's benches exist for. There is no statistical regression analysis,
//! no plotting, and no saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. Only the variants this
/// workspace uses are distinguished; all run one routine call per setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup runs once per routine call.
    SmallInput,
    /// Large per-iteration inputs; treated the same as `SmallInput`.
    LargeInput,
    /// One setup per sample batch; treated the same as `SmallInput`.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times, one entry per sample.
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, per_iter_ns: Vec::with_capacity(samples) }
    }

    /// Minimum wall-clock span one sample must cover; keeps short routines
    /// from being dominated by timer granularity.
    const SAMPLE_WINDOW: Duration = Duration::from_millis(10);

    /// Times `routine`, running it repeatedly per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill one sample window?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Self::SAMPLE_WINDOW || iters >= 1 << 30 {
                break;
            }
            let scale = Self::SAMPLE_WINDOW.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.min(1000.0) * 1.2).ceil() as u64;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.per_iter_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate iteration count on timed spans only.
        let mut iters = 1u64;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Self::SAMPLE_WINDOW || iters >= 1 << 24 {
                break;
            }
            let scale = Self::SAMPLE_WINDOW.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.min(1000.0) * 1.2).ceil() as u64;
        }
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.per_iter_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    if b.per_iter_ns.is_empty() {
        println!("{id:<40} (no measurement)");
        return;
    }
    let n = b.per_iter_ns.len() as f64;
    let mean = b.per_iter_ns.iter().sum::<f64>() / n;
    let min = b.per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

/// Top-level benchmark harness, created by [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, filter: None }
    }
}

impl Criterion {
    /// Applies command-line settings. Recognises a positional substring
    /// filter and ignores harness flags such as `--bench`.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" => {}
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = v;
                    }
                }
                s if s.starts_with("--") => {
                    // Swallow one value for unknown `--flag value` pairs.
                    if matches!(s, "--save-baseline" | "--baseline" | "--measurement-time") {
                        args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.selected(id) {
            run_one(id, self.sample_size, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group (id is `group/name`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(&full, samples, &mut f);
        }
        self
    }

    /// Ends the group. (No-op beyond upstream-interface compatibility.)
    pub fn finish(self) {}
}

/// Declares a benchmark group function that runs each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut ran = 0u32;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(2);
        let mut setups = 0u32;
        let mut runs = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| {
                runs += 1;
                v.len()
            },
            BatchSize::SmallInput,
        );
        assert_eq!(setups, runs);
        assert_eq!(b.per_iter_ns.len(), 2);
    }

    #[test]
    fn groups_prefix_ids_and_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("inner", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        group.finish();
        assert!(ran);
    }
}
