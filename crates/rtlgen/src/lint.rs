//! A small structural linter for the emitted Verilog: balanced constructs
//! and no undeclared datapath identifiers. Not a Verilog parser — a
//! tripwire for emitter bugs, used by the test suite.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural problem in emitted Verilog text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LintError {
    /// `module`/`endmodule`, `case`/`endcase` or `begin`/`end` do not
    /// balance.
    Unbalanced {
        /// The construct that does not balance.
        construct: &'static str,
        /// Opening count.
        opens: usize,
        /// Closing count.
        closes: usize,
    },
    /// A datapath identifier is referenced but never declared.
    Undeclared {
        /// The identifier.
        name: String,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Unbalanced { construct, opens, closes } => {
                write!(f, "{construct}: {opens} openings vs {closes} closings")
            }
            LintError::Undeclared { name } => write!(f, "identifier {name} never declared"),
        }
    }
}

impl Error for LintError {}

/// Tokenizes identifiers/keywords, skipping `//` comments.
fn words(source: &str) -> impl Iterator<Item = &str> {
    source.lines().flat_map(|line| {
        let code = line.split("//").next().unwrap_or("");
        code.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '\''))
            .filter(|w| !w.is_empty())
    })
}

/// Checks the structural invariants described in the module docs.
///
/// # Errors
///
/// Returns the first problem found.
pub fn lint(source: &str) -> Result<(), LintError> {
    let mut counts: std::collections::HashMap<&str, (usize, usize)> = Default::default();
    for w in words(source) {
        match w {
            "module" => counts.entry("module").or_default().0 += 1,
            "endmodule" => counts.entry("module").or_default().1 += 1,
            "case" => counts.entry("case").or_default().0 += 1,
            "endcase" => counts.entry("case").or_default().1 += 1,
            "begin" => counts.entry("begin").or_default().0 += 1,
            "end" => counts.entry("begin").or_default().1 += 1,
            _ => {}
        }
    }
    for (construct, (opens, closes)) in [
        ("module", counts.get("module").copied().unwrap_or((0, 0))),
        ("case", counts.get("case").copied().unwrap_or((0, 0))),
        ("begin", counts.get("begin").copied().unwrap_or((0, 0))),
    ] {
        if opens != closes || opens == 0 && construct == "module" {
            return Err(LintError::Unbalanced { construct, opens, closes });
        }
    }

    // Declarations: identifiers following reg/wire/input/output keywords on
    // the same statement (until ';' or ',' boundaries — approximated by
    // collecting all identifiers on declaration lines).
    let mut declared: HashSet<&str> = HashSet::new();
    let mut referenced: HashSet<&str> = HashSet::new();
    for line in source.lines() {
        let code = line.split("//").next().unwrap_or("");
        let is_decl = ["reg ", "wire ", "input ", "output "]
            .iter()
            .any(|k| code.trim_start().starts_with(k) || code.contains(&format!(" {k}")));
        for w in words(code) {
            let looks_like_signal = w.starts_with('r') && w[1..].chars().all(|c| c.is_ascii_digit())
                || (w.starts_with("fu") && w.contains('_'))
                || w == "cstep"
                || w.starts_with("in_")
                || w.starts_with("out_")
                || w.starts_with("init_");
            if !looks_like_signal {
                continue;
            }
            if is_decl {
                declared.insert(w);
            } else {
                referenced.insert(w);
            }
        }
    }
    for name in referenced {
        if !declared.contains(name) {
            return Err(LintError::Undeclared { name: name.to_string() });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_module_passes() {
        let src = "module m (input wire clk);\n  reg r0;\n  always @(posedge clk) begin\n    r0 <= r0;\n  end\nendmodule\n";
        lint(src).unwrap();
    }

    #[test]
    fn missing_endmodule_fails() {
        let src = "module m (input wire clk);\n";
        assert!(matches!(
            lint(src),
            Err(LintError::Unbalanced { construct: "module", .. })
        ));
    }

    #[test]
    fn unbalanced_case_fails() {
        let src = "module m ();\n  reg r0;\n  always @* case (r0) default: ;\nendmodule\n";
        assert!(matches!(lint(src), Err(LintError::Unbalanced { construct: "case", .. })));
    }

    #[test]
    fn undeclared_register_fails() {
        let src = "module m ();\n  reg r0;\n  always @* begin r0 = r9; end\nendmodule\n";
        assert_eq!(lint(src), Err(LintError::Undeclared { name: "r9".into() }));
    }

    #[test]
    fn comments_are_ignored() {
        let src = "module m ();\n  reg r0; // begin begin case r99\nendmodule\n";
        lint(src).unwrap();
    }
}
