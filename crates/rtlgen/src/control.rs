//! The controller's view of an allocation: a per-step control-word table.
//!
//! High-level synthesis hands the datapath to a controller that asserts,
//! each control step, the functional-unit operation selects, the operand
//! and register-input multiplexer selects, and the register load enables.
//! [`control_table`] renders that word sequence as text — the bridge
//! between the allocation result and controller synthesis (cf. Huang &
//! Wolf, "How Datapath Allocation Affects Controller Delay").

use std::fmt::Write as _;

use salsa_alloc::AllocResult;
use salsa_cdfg::Cdfg;
use salsa_datapath::LoadSrc;

/// Renders the per-step control words of an allocation.
pub fn control_table(graph: &Cdfg, result: &AllocResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "step | unit operations                  | register loads");
    let _ = writeln!(out, "{}", "-".repeat(72));
    for (t, step) in result.rtl.steps.iter().enumerate() {
        let mut ops: Vec<String> = step
            .execs
            .iter()
            .map(|e| {
                format!(
                    "{}:{}({},{})",
                    e.fu,
                    graph.op(e.op).kind(),
                    e.left,
                    e.right
                )
            })
            .collect();
        ops.extend(step.passes.iter().map(|p| format!("{}:PASS({})", p.fu, p.from)));
        let loads: Vec<String> = step
            .loads
            .iter()
            .map(|l| {
                let src = match l.src {
                    LoadSrc::Fu(fu) => format!("{fu}"),
                    LoadSrc::Reg(r) => format!("{r}"),
                    LoadSrc::PassThrough(fu) => format!("{fu}*"),
                };
                format!("{}<={}", l.reg, src)
            })
            .collect();
        let _ = writeln!(out, "{t:>4} | {:<32} | {}", ops.join(" "), loads.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use salsa_alloc::{Allocator, ImproveConfig};
    use salsa_sched::{fds_schedule, FuLibrary};

    #[test]
    fn table_lists_every_step_and_microop() {
        let graph = salsa_cdfg::benchmarks::pid();
        let library = FuLibrary::standard();
        let schedule = fds_schedule(&graph, &library, 8).unwrap();
        let result = Allocator::new(&graph, &schedule, &library)
            .seed(2)
            .config(ImproveConfig {
                max_trials: 2,
                moves_per_trial: Some(200),
                ..ImproveConfig::default()
            })
            .run()
            .unwrap();
        let table = super::control_table(&graph, &result);
        for t in 0..schedule.n_steps() {
            assert!(table.contains(&format!("\n{t:>4} |")) || table.starts_with(&format!("{t:>4} |")),
                "step {t} missing:\n{table}");
        }
        assert!(table.contains("<="), "loads rendered");
        assert!(table.contains("FU"), "units rendered");
    }
}
