//! Structural Verilog generation for SALSA-allocated datapaths.
//!
//! [`generate_verilog`] turns a verified [`AllocResult`] into a single
//! synthesizable-style Verilog-2001 module:
//!
//! * one register per allocated storage register, with a per-control-step
//!   load case (the point-to-point multiplexers become the case arms),
//! * one shared functional unit per allocated unit — combinational ALUs
//!   with per-step operation selection (including the `PASS` pass-through
//!   arm), multipliers with operand capture registers that model the
//!   two-step (optionally pipelined) timing,
//! * a control-step counter FSM driving everything,
//! * environment ports: primary inputs are latched into their registers at
//!   the iteration boundary, loop state is initialized on reset, outputs
//!   are continuously visible (with their sampling step documented).
//!
//! [`generate_testbench`] emits a self-checking testbench whose golden
//! vectors come from the workspace's cycle-accurate simulator,
//! [`control_table`] renders the per-step control words, and [`lint`]
//! performs a structural sanity check of the emitted text (balanced
//! constructs, no undeclared identifiers) used by the tests and available
//! to callers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
mod lint;
mod testbench;
mod verilog;

pub use control::control_table;
pub use lint::{lint, LintError};
pub use testbench::generate_testbench;
pub use verilog::{generate_verilog, VerilogOptions};
