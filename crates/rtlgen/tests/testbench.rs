//! Testbench generation: lints clean, carries the golden vectors the
//! cycle-accurate simulator computed, and covers every output check.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use salsa_alloc::{Allocator, ImproveConfig};
use salsa_cdfg::{benchmarks, evaluate, ValueId};
use salsa_rtlgen::{generate_testbench, generate_verilog, lint, VerilogOptions};
use salsa_sched::{asap, fds_schedule, FuLibrary};

fn quick() -> ImproveConfig {
    ImproveConfig { max_trials: 2, moves_per_trial: Some(250), ..ImproveConfig::default() }
}

fn environment(
    graph: &salsa_cdfg::Cdfg,
    iterations: usize,
    seed: u64,
) -> (Vec<BTreeMap<ValueId, i64>>, BTreeMap<ValueId, i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = (0..iterations)
        .map(|_| {
            graph
                .values()
                .filter(|v| {
                    v.source() == salsa_cdfg::ValueSource::Input && !v.is_state()
                })
                .map(|v| (v.id(), rng.gen_range(-50..50)))
                .collect()
        })
        .collect();
    let state = graph.state_values().map(|s| (s, rng.gen_range(-50..50))).collect();
    (inputs, state)
}

#[test]
fn testbenches_lint_and_carry_golden_vectors() {
    for graph in [benchmarks::pid(), benchmarks::diffeq(), benchmarks::fft_stage()] {
        let library = FuLibrary::standard();
        let cp = asap(&graph, &library).length;
        let schedule = fds_schedule(&graph, &library, cp + 1).unwrap();
        let result = Allocator::new(&graph, &schedule, &library)
            .seed(4)
            .config(quick())
            .run()
            .unwrap();
        let options = VerilogOptions { module_name: format!("dp_{}", graph.name()), width: 16 };
        let (inputs, state) = environment(&graph, 3, 99);
        let tb = generate_testbench(
            &graph, &schedule, &library, &result, &options, &inputs, &state,
        )
        .unwrap();
        lint(&tb).unwrap_or_else(|e| panic!("{}: {e}\n{tb}", graph.name()));
        assert!(tb.contains(&format!("module dp_{}_tb", graph.name())));
        assert!(tb.contains("$finish"));

        // The golden interpreter's first-iteration outputs must appear as
        // expected constants somewhere in the checks.
        let golden = evaluate(&graph, &inputs, &state);
        let checks = tb.matches("check(out_").count();
        assert!(
            checks >= golden.outputs[0].len(),
            "{}: at least one check per output per iteration",
            graph.name()
        );
        let any_output = *golden.outputs[0].values().next().unwrap();
        let literal = if any_output >= 0 {
            format!("16'sd{any_output}")
        } else {
            format!("-16'sd{}", any_output.unsigned_abs())
        };
        assert!(tb.contains(&literal), "{}: golden constant {literal} missing", graph.name());

        // The companion module still lints with the reset-input clause.
        let module = generate_verilog(&graph, &schedule, &library, &result, &options);
        lint(&module).unwrap();
        assert!(module.contains("if (rst)"));
    }
}

#[test]
fn testbench_checks_every_iteration() {
    let graph = benchmarks::pid();
    let library = FuLibrary::standard();
    let schedule = fds_schedule(&graph, &library, 8).unwrap();
    let result = Allocator::new(&graph, &schedule, &library)
        .seed(4)
        .config(quick())
        .run()
        .unwrap();
    let (inputs, state) = environment(&graph, 4, 7);
    let tb = generate_testbench(
        &graph,
        &schedule,
        &library,
        &result,
        &VerilogOptions::default(),
        &inputs,
        &state,
    )
    .unwrap();
    for k in 0..4 {
        assert!(tb.contains(&format!("// ------ iteration {k} ------")));
    }
    // PID's output u is in-iteration (born before the boundary), so four
    // checks for out_u.
    assert_eq!(tb.matches("check(out_u").count(), 4, "{tb}");
}
