//! Verilog generation over every benchmark allocation: lints clean,
//! contains the expected structure, and is deterministic.

use salsa_alloc::{Allocator, ImproveConfig};
use salsa_cdfg::benchmarks;
use salsa_rtlgen::{generate_verilog, lint, VerilogOptions};
use salsa_sched::{asap, fds_schedule, FuLibrary};

fn quick() -> ImproveConfig {
    ImproveConfig { max_trials: 2, moves_per_trial: Some(300), ..ImproveConfig::default() }
}

#[test]
fn all_benchmarks_generate_lint_clean_verilog() {
    for graph in benchmarks::all() {
        let library = FuLibrary::standard();
        let cp = asap(&graph, &library).length;
        let schedule = fds_schedule(&graph, &library, cp + 1).unwrap();
        let result = Allocator::new(&graph, &schedule, &library)
            .seed(5)
            .config(quick())
            .run()
            .unwrap();
        let options = VerilogOptions { module_name: format!("dp_{}", graph.name()), width: 16 };
        let verilog = generate_verilog(&graph, &schedule, &library, &result, &options);
        lint(&verilog).unwrap_or_else(|e| panic!("{}: {e}\n{verilog}", graph.name()));
        assert!(verilog.contains(&format!("module dp_{}", graph.name())));
        assert!(verilog.contains("endmodule"));
        assert!(verilog.contains("cstep"));
        // One storage register declaration per allocated register.
        let decls = verilog.matches("  reg signed [15:0] r").count();
        assert_eq!(decls, result.datapath.num_regs(), "{}", graph.name());
        // Every output has a visible port and assignment.
        for v in graph.values().filter(|v| v.is_output()) {
            assert!(
                verilog.contains("out_") && verilog.contains("assign out_"),
                "{}: output {v} missing",
                graph.name()
            );
        }
    }
}

#[test]
fn multiplier_units_capture_operands() {
    let graph = benchmarks::ewf();
    let library = FuLibrary::standard();
    let schedule = fds_schedule(&graph, &library, 19).unwrap();
    let result = Allocator::new(&graph, &schedule, &library)
        .seed(5)
        .config(quick())
        .run()
        .unwrap();
    let verilog =
        generate_verilog(&graph, &schedule, &library, &result, &VerilogOptions::default());
    assert!(verilog.contains("_a <= "), "multiplier operand capture register");
    assert!(verilog.contains("_a * "), "registered product");
    assert!(verilog.contains("multiplier (operands captured at issue"));
}

#[test]
fn pass_through_becomes_an_alu_case_arm() {
    // Force a pass-through via the allocator's move machinery on the FIR
    // delay line and confirm the ALU case contains the PASS arm.
    use rand::SeedableRng;
    let graph = benchmarks::fir16();
    let library = FuLibrary::standard();
    let schedule = fds_schedule(&graph, &library, 10).unwrap();
    let datapath = salsa_datapath::Datapath::new(
        &schedule.fu_demand(&graph, &library),
        schedule.register_demand(&graph, &library),
    );
    let ctx = salsa_alloc::AllocContext::new(&graph, &schedule, &library, datapath).unwrap();
    let mut binding = salsa_alloc::initial_allocation(&ctx);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut bound = false;
    for _ in 0..300 {
        if salsa_alloc::moves::try_move(
            &mut binding,
            salsa_alloc::MoveKind::PassBind,
            &mut rng,
        ) {
            bound = true;
            break;
        }
    }
    assert!(bound);
    let (rtl, claims) = salsa_alloc::lower(&binding);
    salsa_datapath::verify(&graph, &schedule, &library, &ctx.datapath, &rtl, &claims).unwrap();
    // Assemble a minimal AllocResult-shaped input by re-running the
    // allocator pipeline pieces.
    let result = salsa_alloc::AllocResult {
        datapath: ctx.datapath.clone(),
        breakdown: binding.breakdown(),
        cost: 0,
        merged: salsa_datapath::merge_muxes(&salsa_datapath::traffic_from_rtl(&rtl)),
        stats: Default::default(),
        portfolio: Default::default(),
        verified: true,
        winner: binding.to_parts(),
        warm: None,
        rtl,
        claims,
    };
    let verilog =
        generate_verilog(&graph, &schedule, &library, &result, &VerilogOptions::default());
    lint(&verilog).unwrap();
    assert!(verilog.contains("PASS-through"), "pass arm emitted:\n{verilog}");
}

#[test]
fn generation_is_deterministic() {
    let graph = benchmarks::diffeq();
    let library = FuLibrary::standard();
    let schedule = fds_schedule(&graph, &library, 9).unwrap();
    let run = || {
        let result = Allocator::new(&graph, &schedule, &library)
            .seed(3)
            .config(quick())
            .run()
            .unwrap();
        generate_verilog(&graph, &schedule, &library, &result, &VerilogOptions::default())
    };
    assert_eq!(run(), run());
}
