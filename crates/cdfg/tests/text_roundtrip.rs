//! Property test: the text format roundtrips arbitrary generated graphs.

use proptest::prelude::*;
use salsa_cdfg::{cdfg_to_text, parse_cdfg, random_cdfg, RandomCdfgConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn random_graphs_roundtrip(
        seed in 0u64..2000,
        ops in 3usize..40,
        inputs in 1usize..5,
        states in 0usize..5,
        mul_ratio in 0.0f64..0.9,
    ) {
        let cfg = RandomCdfgConfig {
            ops,
            inputs,
            states,
            mul_ratio,
            ..RandomCdfgConfig::default()
        };
        let graph = random_cdfg(&cfg, seed);
        let text = cdfg_to_text(&graph);
        let parsed = parse_cdfg(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(parsed.num_ops(), graph.num_ops());
        prop_assert_eq!(parsed.num_values(), graph.num_values());
        prop_assert_eq!(parsed.stats().ops_by_kind, graph.stats().ops_by_kind);
        prop_assert_eq!(
            parsed.feedback_sources().count(),
            graph.feedback_sources().count()
        );
        prop_assert_eq!(parsed.output_values().count(), graph.output_values().count());
        // Serializing the reparse is a fixpoint (canonical form).
        let text2 = cdfg_to_text(&parsed);
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn memory_graphs_roundtrip(
        seed in 0u64..2000,
        ops in 6usize..40,
        inputs in 1usize..5,
        states in 0usize..4,
        arrays in 1usize..4,
        mem_ratio in 0.05f64..0.6,
    ) {
        let cfg = RandomCdfgConfig {
            ops,
            inputs,
            states,
            arrays,
            mem_ratio,
            ..RandomCdfgConfig::default()
        };
        let graph = random_cdfg(&cfg, seed);
        prop_assert!(graph.has_memory());
        let text = cdfg_to_text(&graph);
        let parsed = parse_cdfg(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(parsed.num_ops(), graph.num_ops());
        prop_assert_eq!(parsed.num_values(), graph.num_values());
        prop_assert_eq!(parsed.num_arrays(), graph.num_arrays());
        prop_assert_eq!(parsed.stats().ops_by_kind, graph.stats().ops_by_kind);
        // Array declarations survive byte-for-byte: lengths and
        // initializer words are part of the canonical form.
        for (a, b) in graph.arrays().zip(parsed.arrays()) {
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.initial_words(), b.initial_words());
        }
        // Serializing the reparse is a fixpoint (canonical form).
        let text2 = cdfg_to_text(&parsed);
        prop_assert_eq!(text, text2);
    }
}
