//! Cache-key soundness: `parse(print(g))` reproduces `g` up to the
//! canonical form, across every benchmark CDFG and ~50 seeded random
//! DFGs. The serving layer's content-addressed result cache keys on the
//! canonical text's fingerprint, so these properties are exactly what
//! makes an exact-hit cache sound:
//!
//! 1. *Fixpoint*: `print(parse(print(g))) == print(g)` — one serialize
//!    normalizes spelling for good;
//! 2. *Structure preservation*: the reparse has identical ops, values,
//!    kinds, feedbacks, outputs and evaluation behaviour;
//! 3. *Fingerprint stability*: `parse(print(g)).fingerprint() ==
//!    g.fingerprint()`.

use salsa_cdfg::{cdfg_to_text, parse_cdfg, random_cdfg, Cdfg, RandomCdfgConfig};

fn assert_roundtrip(g: &Cdfg, label: &str) {
    let text = cdfg_to_text(g);
    let parsed = parse_cdfg(&text).unwrap_or_else(|e| panic!("{label}: reparse failed: {e}\n{text}"));

    // Structure is preserved exactly.
    assert_eq!(parsed.num_ops(), g.num_ops(), "{label}: op count");
    assert_eq!(parsed.num_values(), g.num_values(), "{label}: value count");
    assert_eq!(parsed.stats().ops_by_kind, g.stats().ops_by_kind, "{label}: op kinds");
    assert_eq!(
        parsed.feedback_sources().count(),
        g.feedback_sources().count(),
        "{label}: feedbacks"
    );
    assert_eq!(
        parsed.output_values().count(),
        g.output_values().count(),
        "{label}: outputs"
    );
    assert_eq!(
        parsed.state_values().count(),
        g.state_values().count(),
        "{label}: states"
    );

    // The canonical form is a fixpoint, so the fingerprint is stable —
    // the cache-key property.
    assert_eq!(cdfg_to_text(&parsed), text, "{label}: canonical text is not a fixpoint");
    assert_eq!(parsed.fingerprint(), g.fingerprint(), "{label}: fingerprint drifted");
}

#[test]
fn all_benchmarks_roundtrip_canonically() {
    // Includes the five served-by-name benchmarks (ewf, dct, hal/diffeq,
    // fir16, ar_lattice) plus the auxiliary designs.
    let benchmarks = salsa_cdfg::benchmarks::all();
    assert!(benchmarks.len() >= 5);
    for g in &benchmarks {
        assert_roundtrip(g, g.name());
    }
}

#[test]
fn fifty_seeded_random_dfgs_roundtrip_canonically() {
    for seed in 0..50u64 {
        // Vary the shape with the seed so the sweep covers wide/narrow,
        // state-free and state-heavy, multiplier-light and -heavy graphs.
        let cfg = RandomCdfgConfig {
            ops: 3 + (seed as usize * 7) % 60,
            inputs: 1 + (seed as usize) % 4,
            states: (seed as usize) % 5,
            mul_ratio: (seed % 10) as f64 / 10.0,
            const_coeff_ratio: (seed % 4) as f64 / 4.0,
            ..RandomCdfgConfig::default()
        };
        let g = random_cdfg(&cfg, seed);
        assert_roundtrip(&g, &format!("random seed {seed}"));
    }
}

#[test]
fn thirty_seeded_random_memory_dfgs_roundtrip_canonically() {
    // The arrays-enabled generator mode: every graph carries 1-3 memory
    // arrays plus a mix of loads/stores, so the sweep covers the hidden
    // const-0 port-filler idiom and the `array` directive end to end.
    for seed in 0..30u64 {
        let cfg = RandomCdfgConfig {
            ops: 6 + (seed as usize * 5) % 40,
            inputs: 1 + (seed as usize) % 3,
            states: (seed as usize) % 4,
            mul_ratio: (seed % 8) as f64 / 10.0,
            const_coeff_ratio: (seed % 4) as f64 / 4.0,
            arrays: 1 + (seed as usize) % 3,
            mem_ratio: 0.15 + (seed % 5) as f64 / 10.0,
        };
        let g = random_cdfg(&cfg, 1000 + seed);
        assert!(g.has_memory(), "seed {seed}: generator must emit memory ops");
        assert_roundtrip(&g, &format!("random memory seed {seed}"));
    }
}

#[test]
fn canonical_text_normalizes_spelling_variants() {
    let canonical = "cdfg t\ninput x\nconst k = 3\nop y = mul x k\noutput y\n";
    let variants = [
        "cdfg t\ninput x\nconst k = 3\nop y = mul x k\noutput y",
        "# header comment\ncdfg t\n\ninput x\nconst k = 3\n\top y = mul\tx  k\noutput y # out\n",
        "cdfg t\r\ninput x\r\nconst k = 3\r\nop y = mul x k\r\noutput y\r\n",
    ];
    let base = parse_cdfg(canonical).unwrap();
    for v in variants {
        let g = parse_cdfg(v).unwrap_or_else(|e| panic!("variant failed: {e}"));
        assert_eq!(g.canonical_text(), base.canonical_text(), "variant: {v:?}");
        assert_eq!(g.fingerprint(), base.fingerprint());
    }
}
