//! Graphviz (DOT) export for CDFGs — used to regenerate Figure 5 (the DCT
//! CDFG) and to inspect the benchmark graphs.

use std::fmt::Write as _;

use crate::{Cdfg, OpKind, ValueSource};

impl Cdfg {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// Operations are drawn as circles labeled with their mnemonic, primary
    /// inputs and state values as boxes, constants as plain text, and loop
    /// feedback as dashed edges.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
        for value in self.values() {
            match value.source() {
                ValueSource::Input => {
                    let shape = if value.is_state() { "box" } else { "invhouse" };
                    let _ = writeln!(
                        out,
                        "  \"{}\" [shape={} label=\"{}\"];",
                        value.id(),
                        shape,
                        value.label()
                    );
                }
                ValueSource::Const(c) => {
                    let _ = writeln!(
                        out,
                        "  \"{}\" [shape=plaintext label=\"{}\"];",
                        value.id(),
                        c
                    );
                }
                ValueSource::Op(_) => {}
            }
        }
        for op in self.ops() {
            let color = match op.kind() {
                OpKind::Mul => "lightblue",
                OpKind::Add => "white",
                OpKind::Sub => "lightyellow",
                OpKind::Lt => "lightgrey",
                OpKind::Load => "lightgreen",
                OpKind::Store => "lightpink",
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape=circle style=filled fillcolor={} label=\"{}\"];",
                op.id(),
                color,
                op.kind().mnemonic()
            );
            for input in op.inputs() {
                let src = self.value(input);
                match src.source() {
                    ValueSource::Op(producer) => {
                        let _ = writeln!(out, "  \"{}\" -> \"{}\";", producer, op.id());
                    }
                    _ => {
                        let _ = writeln!(out, "  \"{}\" -> \"{}\";", src.id(), op.id());
                    }
                }
            }
        }
        for value in self.values() {
            if value.is_output() {
                let _ = writeln!(
                    out,
                    "  \"out_{}\" [shape=house label=\"{}\"];",
                    value.id(),
                    value.label()
                );
                let from = match value.source() {
                    ValueSource::Op(op) => format!("{op}"),
                    _ => format!("{}", value.id()),
                };
                let _ = writeln!(out, "  \"{}\" -> \"out_{}\";", from, value.id());
            }
        }
        for (src, state) in self.feedback_sources() {
            let from = match self.value(src).source() {
                ValueSource::Op(op) => format!("{op}"),
                _ => format!("{src}"),
            };
            let _ = writeln!(out, "  \"{from}\" -> \"{state}\" [style=dashed constraint=false];");
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::CdfgBuilder;

    #[test]
    fn dot_contains_all_elements() {
        let mut b = CdfgBuilder::new("dot");
        let x = b.input("x");
        let s = b.state("s");
        let k = b.constant(7);
        let m = b.mul(s, k);
        let y = b.add(x, m);
        b.feedback(s, y);
        b.mark_output(y, "y");
        let g = b.finish().unwrap();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph \"dot\""));
        assert!(dot.contains("shape=box"), "state drawn as box");
        assert!(dot.contains("shape=invhouse"), "input drawn as invhouse");
        assert!(dot.contains("label=\"7\""), "constant label");
        assert!(dot.contains("style=dashed"), "feedback edge dashed");
        assert!(dot.contains("shape=house"), "output house");
        assert!(dot.trim_end().ends_with('}'));
    }
}
