//! Reference interpretation of a CDFG over concrete integer values.
//!
//! This is the *golden model* for datapath validation: the cycle-accurate
//! RTL simulator in `salsa-datapath` must produce exactly these outputs
//! and state updates for any allocation of the graph.

use std::collections::BTreeMap;

use crate::{ArrayId, Cdfg, OpKind, ValueId, ValueSource};

impl OpKind {
    /// Applies the operation to two's-complement 64-bit operands
    /// (wrapping arithmetic; `Lt` yields 0 or 1).
    pub fn apply(self, left: i64, right: i64) -> i64 {
        match self {
            OpKind::Add => left.wrapping_add(right),
            OpKind::Sub => left.wrapping_sub(right),
            OpKind::Mul => left.wrapping_mul(right),
            OpKind::Lt => i64::from(left < right),
            // Memory kinds are interpreted against array state by the
            // evaluator/simulator; as pure functions of their register
            // operands they contribute nothing.
            OpKind::Load | OpKind::Store => 0,
        }
    }
}

/// Result of [`evaluate`]: per-iteration primary outputs and the
/// loop-carried state after the final iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalResult {
    /// `outputs[k][v]` — value of primary output `v` in iteration `k`.
    pub outputs: Vec<BTreeMap<ValueId, i64>>,
    /// State values after the last iteration (what the next iteration
    /// would read).
    pub states: BTreeMap<ValueId, i64>,
    /// Full contents of every memory array after the last iteration.
    pub arrays: BTreeMap<ArrayId, Vec<i64>>,
}

/// Executes the graph for `inputs.len()` iterations.
///
/// ```
/// use std::collections::BTreeMap;
/// use salsa_cdfg::{evaluate, CdfgBuilder};
///
/// let mut b = CdfgBuilder::new("acc");
/// let x = b.input("x");
/// let acc = b.state("acc");
/// let sum = b.add(acc, x);
/// b.feedback(acc, sum);
/// b.mark_output(sum, "sum");
/// let graph = b.finish().unwrap();
///
/// let inputs: Vec<BTreeMap<_, _>> =
///     [1, 2, 3].iter().map(|&v| BTreeMap::from([(x, v)])).collect();
/// let result = evaluate(&graph, &inputs, &BTreeMap::from([(acc, 0)]));
/// assert_eq!(result.outputs[2][&sum], 6, "running sum");
/// ```
///
/// `inputs[k]` supplies every non-state primary input for iteration `k`;
/// `initial_state` supplies every state value for iteration 0 (later
/// iterations use the feedback values).
///
/// # Panics
///
/// Panics if an iteration is missing an input or a state value is missing
/// from `initial_state`.
pub fn evaluate(
    graph: &Cdfg,
    inputs: &[BTreeMap<ValueId, i64>],
    initial_state: &BTreeMap<ValueId, i64>,
) -> EvalResult {
    let mut states: BTreeMap<ValueId, i64> = graph
        .state_values()
        .map(|s| {
            (
                s,
                *initial_state
                    .get(&s)
                    .unwrap_or_else(|| panic!("missing initial state for {s}")),
            )
        })
        .collect();
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut arrays: Vec<Vec<i64>> =
        graph.arrays().map(|a| a.initial_words()).collect();

    for iteration in inputs {
        let mut env: Vec<Option<i64>> = vec![None; graph.num_values()];
        for value in graph.values() {
            match value.source() {
                ValueSource::Const(c) => env[value.id().index()] = Some(c),
                ValueSource::Input => {
                    let concrete = if value.is_state() {
                        states[&value.id()]
                    } else {
                        *iteration
                            .get(&value.id())
                            .unwrap_or_else(|| panic!("missing input {}", value.id()))
                    };
                    env[value.id().index()] = Some(concrete);
                }
                ValueSource::Op(_) => {}
            }
        }
        // Stores commit at the end of the iteration; the read-XOR-write
        // invariant makes this indistinguishable from any in-iteration
        // commit order.
        let mut pending_stores: Vec<(ArrayId, i64, i64)> = Vec::new();
        for op in graph.ops() {
            let left = env[op.input(0).index()].expect("topological order");
            let right = env[op.input(1).index()].expect("topological order");
            let result = match op.kind() {
                OpKind::Load => {
                    let array = op.array().expect("loads carry an array");
                    let words = &arrays[array.index()];
                    words[wrap_addr(left, words.len())]
                }
                OpKind::Store => {
                    pending_stores.push((
                        op.array().expect("stores carry an array"),
                        left,
                        right,
                    ));
                    0
                }
                kind => kind.apply(left, right),
            };
            env[op.output().index()] = Some(result);
        }
        for (array, addr, data) in pending_stores {
            let words = &mut arrays[array.index()];
            let idx = wrap_addr(addr, words.len());
            words[idx] = data;
        }
        outputs.push(
            graph
                .output_values()
                .map(|v| (v, env[v.index()].expect("outputs are computed")))
                .collect(),
        );
        states = graph
            .state_values()
            .map(|s| {
                let src = graph.value(s).feedback_from().expect("state has feedback");
                (s, env[src.index()].expect("feedback sources are computed"))
            })
            .collect();
    }
    EvalResult {
        outputs,
        states,
        arrays: graph.array_ids().zip(arrays).collect(),
    }
}

/// Wraps a two's-complement address into `0..len` (addresses are taken
/// modulo the array length, matching the RTL's address truncation).
pub fn wrap_addr(addr: i64, len: usize) -> usize {
    debug_assert!(len > 0, "validated arrays are non-empty");
    addr.rem_euclid(len as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdfgBuilder;

    #[test]
    fn opkind_apply() {
        assert_eq!(OpKind::Add.apply(3, 4), 7);
        assert_eq!(OpKind::Sub.apply(3, 4), -1);
        assert_eq!(OpKind::Mul.apply(3, 4), 12);
        assert_eq!(OpKind::Lt.apply(3, 4), 1);
        assert_eq!(OpKind::Lt.apply(4, 3), 0);
        assert_eq!(OpKind::Add.apply(i64::MAX, 1), i64::MIN, "wrapping");
    }

    #[test]
    fn accumulator_loop() {
        // acc <= acc + x; y = acc + x observed each iteration.
        let mut b = CdfgBuilder::new("acc");
        let x = b.input("x");
        let acc = b.state("acc");
        let y = b.add(acc, x);
        b.feedback(acc, y);
        b.mark_output(y, "y");
        let g = b.finish().unwrap();

        let inputs: Vec<BTreeMap<_, _>> =
            [10, 20, 30].iter().map(|&v| BTreeMap::from([(x, v)])).collect();
        let result = evaluate(&g, &inputs, &BTreeMap::from([(acc, 0)]));
        assert_eq!(result.outputs[0][&y], 10);
        assert_eq!(result.outputs[1][&y], 30);
        assert_eq!(result.outputs[2][&y], 60);
        assert_eq!(result.states[&acc], 60);
    }

    #[test]
    fn shift_register_semantics() {
        // d1 <= x, d2 <= d1: outputs observe a two-cycle delay.
        let mut b = CdfgBuilder::new("delay2");
        let x = b.input("x");
        let d1 = b.state("d1");
        let d2 = b.state("d2");
        let k = b.constant(1);
        let y = b.mul(d2, k);
        b.feedback(d1, x);
        b.feedback(d2, d1);
        b.mark_output(y, "y");
        let g = b.finish().unwrap();

        let inputs: Vec<BTreeMap<_, _>> =
            [7, 8, 9, 10].iter().map(|&v| BTreeMap::from([(x, v)])).collect();
        let result = evaluate(&g, &inputs, &BTreeMap::from([(d1, 0), (d2, 0)]));
        let ys: Vec<i64> = result.outputs.iter().map(|o| o[&y]).collect();
        assert_eq!(ys, [0, 0, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn missing_input_panics() {
        let mut b = CdfgBuilder::new("m");
        let x = b.input("x");
        let y = b.add(x, x);
        b.mark_output(y, "y");
        let g = b.finish().unwrap();
        let _ = evaluate(&g, &[BTreeMap::new()], &BTreeMap::new());
    }
}
