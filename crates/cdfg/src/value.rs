//! Values: the storage-requiring data items of the CDFG.

use std::fmt;

use crate::{ArrayId, OpId, ValueId};

/// A declared memory array: an addressable block of words accessed through
/// [`Load`](crate::OpKind::Load) / [`Store`](crate::OpKind::Store)
/// operations and mapped onto a port-limited memory bank by the allocator.
///
/// Within one iteration an array is either *read-only* or *write-only*
/// (enforced by [`Cdfg::validate`](crate::Cdfg::validate)), so no
/// memory-dependence edges are needed: any schedule of the accesses is
/// semantically equivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    pub(crate) id: ArrayId,
    pub(crate) label: String,
    pub(crate) len: usize,
    /// Initial contents (shorter than `len` is zero-padded).
    pub(crate) init: Vec<i64>,
}

impl ArrayDecl {
    /// This array's id.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// Human-readable name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of addressable words. Addresses wrap modulo this length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the array has no words (rejected by validation).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Declared initial contents (may be shorter than [`len`](Self::len);
    /// the remaining words start at zero).
    pub fn init(&self) -> &[i64] {
        &self.init
    }

    /// The full initial contents, zero-padded to [`len`](Self::len).
    pub fn initial_words(&self) -> Vec<i64> {
        let mut words = self.init.clone();
        words.resize(self.len, 0);
        words
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}[{}])", self.id, self.label, self.len)
    }
}

/// Where a value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueSource {
    /// Produced by an operation of the graph.
    Op(OpId),
    /// A primary input: available in a register from control step 0.
    Input,
    /// A compile-time constant coefficient. Constants require no storage and
    /// no interconnect in the paper's cost model ("constants for
    /// multiplication were not considered to contribute to the cost", §5).
    Const(i64),
}

impl ValueSource {
    /// Returns the producing operation, if any.
    pub fn op(self) -> Option<OpId> {
        match self {
            ValueSource::Op(op) => Some(op),
            _ => None,
        }
    }

    /// Returns `true` for constant values.
    pub fn is_const(self) -> bool {
        matches!(self, ValueSource::Const(_))
    }
}

/// A single read of a value: which operation consumes it and on which port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Use {
    /// The consuming operation.
    pub op: OpId,
    /// The operand port (0 = left, 1 = right).
    pub port: usize,
}

/// A data value of the CDFG.
///
/// Non-constant values must be stored in registers for (at least) the span
/// between their production and their last read; the SALSA binding model
/// additionally allows that span to be broken into per-step *segments* bound
/// to different registers (see the `salsa-alloc` crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    pub(crate) id: ValueId,
    pub(crate) source: ValueSource,
    pub(crate) label: String,
    pub(crate) uses: Vec<Use>,
    /// For loop-carried *state* values: the value of the previous iteration
    /// that becomes this value at the iteration boundary.
    pub(crate) feedback_from: Option<ValueId>,
    /// Primary-output flag. Output values stay live through the end of the
    /// schedule so that their result can be observed.
    pub(crate) is_output: bool,
}

impl Value {
    /// This value's id.
    pub fn id(&self) -> ValueId {
        self.id
    }

    /// Where the value comes from.
    pub fn source(&self) -> ValueSource {
        self.source
    }

    /// Human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// All reads of this value, in operation order.
    pub fn uses(&self) -> &[Use] {
        &self.uses
    }

    /// For a loop-carried state value, the previous-iteration value that is
    /// transferred into it at the iteration boundary.
    pub fn feedback_from(&self) -> Option<ValueId> {
        self.feedback_from
    }

    /// Returns `true` if the value is a loop-carried state input.
    pub fn is_state(&self) -> bool {
        self.feedback_from.is_some()
    }

    /// Returns `true` if the value is a primary output.
    pub fn is_output(&self) -> bool {
        self.is_output
    }

    /// Returns `true` for constant values (no storage, no interconnect cost).
    pub fn is_const(&self) -> bool {
        self.source.is_const()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_helpers() {
        assert_eq!(ValueSource::Op(OpId::from_index(1)).op(), Some(OpId::from_index(1)));
        assert_eq!(ValueSource::Input.op(), None);
        assert!(ValueSource::Const(5).is_const());
        assert!(!ValueSource::Input.is_const());
    }

    #[test]
    fn value_accessors() {
        let v = Value {
            id: ValueId::from_index(3),
            source: ValueSource::Input,
            label: "sv2".into(),
            uses: vec![Use { op: OpId::from_index(0), port: 1 }],
            feedback_from: Some(ValueId::from_index(9)),
            is_output: false,
        };
        assert!(v.is_state());
        assert!(!v.is_output());
        assert!(!v.is_const());
        assert_eq!(v.uses().len(), 1);
        assert_eq!(v.to_string(), "v3 (sv2)");
    }
}
