//! Content-addressed fingerprinting of CDFGs via the canonical text form.
//!
//! The serving layer caches allocation results keyed by *what was asked*:
//! the graph, the resource constraints and the search knobs. For that key
//! to be sound the graph component must be **canonical** — two requests
//! carrying different spellings of the same design (comments, blank
//! lines, whitespace) must collide, and requests for different designs
//! must not. [`cdfg_to_text`](crate::cdfg_to_text) provides the canonical
//! form: serializing any parsed graph is a *fixpoint* (`print(parse(t))
//! == t` for `t = print(g)`, property-tested in `tests/canonical.rs`
//! across every benchmark and dozens of random designs), so hashing the
//! canonical text addresses the graph's structure, not its spelling.
//!
//! The hash is FNV-1a over 128 bits — `u128` arithmetic is native Rust,
//! the function is trivially reproducible in any client language, and at
//! the cache sizes a single server holds (thousands of entries, not
//! 2^64) accidental collisions are beyond negligible. This is *not* a
//! cryptographic hash: the cache trusts its own writers, and a client who
//! could engineer a collision could as easily submit a wrong answer
//! directly.

use crate::{cdfg_to_text, Cdfg};

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a over arbitrary bytes.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl Cdfg {
    /// The canonical text form of this graph: the serializer's output,
    /// which is identical for every source text that parses to this
    /// structure (comments and whitespace normalized away, names
    /// sanitized deterministically). This is the cache-key component a
    /// result store hashes.
    pub fn canonical_text(&self) -> String {
        cdfg_to_text(self)
    }

    /// 128-bit FNV-1a fingerprint of [`canonical_text`](Self::canonical_text).
    pub fn fingerprint(&self) -> u128 {
        fnv1a_128(self.canonical_text().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cdfg;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 128 test vectors (empty string = offset basis).
        assert_eq!(fnv1a_128(b""), FNV_OFFSET);
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
        assert_ne!(fnv1a_128(b"ab"), fnv1a_128(b"ba"));
    }

    #[test]
    fn spelling_does_not_change_the_fingerprint() {
        let spartan = "cdfg t\ninput x\nconst k = 3\nop y = mul x k\noutput y\n";
        let ornate = "# a comment\ncdfg t\n\n  input   x\nconst k = 3 # three\n\
                      op y = mul x k\noutput y\n";
        let a = parse_cdfg(spartan).unwrap();
        let b = parse_cdfg(ornate).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.canonical_text(), b.canonical_text());
    }

    #[test]
    fn different_designs_differ() {
        let a = parse_cdfg("cdfg t\ninput x\nop y = add x x\noutput y\n").unwrap();
        let b = parse_cdfg("cdfg t\ninput x\nop y = mul x x\noutput y\n").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn benchmarks_have_stable_distinct_fingerprints() {
        let prints: Vec<u128> =
            crate::benchmarks::all().iter().map(Cdfg::fingerprint).collect();
        let mut unique = prints.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), prints.len(), "benchmark fingerprints collide");
        // Stable across calls.
        assert_eq!(prints[0], crate::benchmarks::all()[0].fingerprint());
    }
}
