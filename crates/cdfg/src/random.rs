//! Seeded random CDFG generation for property-based testing.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ArrayId, Cdfg, CdfgBuilder, OpKind, ValueId};

/// Parameters for [`random_cdfg`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomCdfgConfig {
    /// Number of operations to generate (at least 1).
    pub ops: usize,
    /// Number of primary inputs (at least 1).
    pub inputs: usize,
    /// Number of loop-carried state values.
    pub states: usize,
    /// Probability that an operation is a multiplication (the remainder is
    /// split between add and sub).
    pub mul_ratio: f64,
    /// Probability that a multiplication's right operand is a fresh constant
    /// (as in the paper's benchmarks, where all multiplies are by
    /// coefficients).
    pub const_coeff_ratio: f64,
    /// Number of memory arrays to declare (`0` generates a pure scalar
    /// graph, bit-identical to the pre-memory generator). Each array is
    /// randomly assigned a read-only or write-only role, and at least one
    /// access per array is generated.
    pub arrays: usize,
    /// Probability that an operation is a memory access, once every array
    /// has its forced first access. Ignored when `arrays == 0`.
    pub mem_ratio: f64,
}

impl Default for RandomCdfgConfig {
    fn default() -> Self {
        RandomCdfgConfig {
            ops: 20,
            inputs: 2,
            states: 2,
            mul_ratio: 0.3,
            const_coeff_ratio: 0.8,
            arrays: 0,
            mem_ratio: 0.25,
        }
    }
}

/// Generates a valid random CDFG.
///
/// The generator biases operand selection toward recently produced values so
/// that the graph has realistic depth, guarantees every non-constant value is
/// consumed (unconsumed values become primary outputs), and closes every
/// state's feedback loop from a produced value.
///
/// # Panics
///
/// Panics if `config.ops == 0` or `config.inputs == 0`.
pub fn random_cdfg(config: &RandomCdfgConfig, seed: u64) -> Cdfg {
    assert!(config.ops > 0, "need at least one operation");
    assert!(config.inputs > 0, "need at least one input");
    assert!(
        config.ops > config.arrays,
        "need more operations than forced array accesses"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CdfgBuilder::new(format!("random_{seed}"));

    let mut pool: Vec<ValueId> = Vec::new();
    for i in 0..config.inputs {
        pool.push(b.input(format!("x{i}")));
    }
    let mut states = Vec::new();
    for i in 0..config.states {
        let s = b.state(format!("s{i}"));
        states.push(s);
        pool.push(s);
    }

    // Pick operands with a bias toward the tail of the pool (recent values)
    // to obtain chains rather than a flat fan-out graph.
    fn pick(rng: &mut StdRng, pool: &[ValueId]) -> ValueId {
        let n = pool.len();
        let r: f64 = rng.gen();
        let idx = ((1.0 - r * r) * n as f64) as usize;
        pool[idx.min(n - 1)]
    }

    // Memory arrays: each gets a fixed read-only or write-only role and a
    // forced first access (operations 0..arrays), so no array is dead.
    let mut arrays: Vec<(ArrayId, usize, bool)> = Vec::new();
    for i in 0..config.arrays {
        let len = rng.gen_range(4..=16usize);
        let writes = rng.gen_bool(0.5);
        let init = if writes {
            Vec::new()
        } else {
            (0..len).map(|_| rng.gen_range(-32..64)).collect()
        };
        let id = b.array_init(format!("arr{i}"), len, init);
        arrays.push((id, len, writes));
    }

    let mut consumed: HashSet<ValueId> = HashSet::new();
    let mut produced = Vec::new();
    for i in 0..config.ops {
        if !arrays.is_empty() {
            let forced = i < arrays.len();
            if forced || rng.gen_bool(config.mem_ratio.clamp(0.0, 1.0)) {
                let which = if forced { i } else { rng.gen_range(0..arrays.len()) };
                let (array, len, writes) = arrays[which];
                let addr = if rng.gen_bool(0.5) {
                    b.constant(rng.gen_range(0..len as i64))
                } else {
                    pick(&mut rng, &pool)
                };
                consumed.insert(addr);
                if writes {
                    let data = pick(&mut rng, &pool);
                    consumed.insert(data);
                    // The token stays out of the operand pool: it must
                    // never be read, fed back, or marked as an output.
                    let _token = b.store_labeled(array, addr, data, format!("n{i}"));
                } else {
                    let out = b.load_labeled(array, addr, format!("n{i}"));
                    pool.push(out);
                    produced.push(out);
                }
                continue;
            }
        }
        let roll: f64 = rng.gen();
        let kind = if roll < config.mul_ratio {
            OpKind::Mul
        } else if roll < config.mul_ratio + (1.0 - config.mul_ratio) * 0.7 {
            OpKind::Add
        } else {
            OpKind::Sub
        };
        let left = pick(&mut rng, &pool);
        let right = if kind == OpKind::Mul && rng.gen_bool(config.const_coeff_ratio) {
            b.constant(rng.gen_range(2..64))
        } else {
            pick(&mut rng, &pool)
        };
        consumed.insert(left);
        consumed.insert(right);
        let out = b.op_labeled(kind, left, right, format!("n{i}"));
        pool.push(out);
        produced.push(out);
    }

    // Close the feedback loops from distinct late-produced values.
    if !states.is_empty() {
        assert!(
            !produced.is_empty(),
            "state feedback needs at least one load or arithmetic result"
        );
    }
    for (i, &s) in states.iter().enumerate() {
        let src = produced[produced.len() - 1 - (i % produced.len())];
        b.feedback(s, src);
        consumed.insert(src);
    }

    // The builder rejects dead values, so every unconsumed value becomes a
    // primary output.
    let mut out_idx = 0;
    for &v in &pool {
        if !consumed.contains(&v) {
            b.mark_output(v, format!("y{out_idx}"));
            out_idx += 1;
        }
    }
    b.finish().expect("random graph construction is valid by design")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid() {
        for seed in 0..25 {
            let g = random_cdfg(&RandomCdfgConfig::default(), seed);
            g.validate().expect("random graph validates");
            assert_eq!(g.num_ops(), 20);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_cdfg(&RandomCdfgConfig::default(), 42);
        let b = random_cdfg(&RandomCdfgConfig::default(), 42);
        assert_eq!(a, b);
        let c = random_cdfg(&RandomCdfgConfig::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = RandomCdfgConfig { ops: 50, inputs: 3, states: 4, ..Default::default() };
        let g = random_cdfg(&cfg, 7);
        let st = g.stats();
        assert_eq!(st.ops, 50);
        assert_eq!(st.inputs, 3);
        assert_eq!(st.states, 4);
    }

    #[test]
    fn no_states_supported() {
        let cfg = RandomCdfgConfig { states: 0, ..Default::default() };
        let g = random_cdfg(&cfg, 1);
        assert_eq!(g.state_values().count(), 0);
    }

    #[test]
    fn larger_graphs_stay_valid() {
        let cfg = RandomCdfgConfig { ops: 200, inputs: 4, states: 6, ..Default::default() };
        for seed in [0, 99, 1234] {
            let g = random_cdfg(&cfg, seed);
            g.validate().expect("large random graph validates");
        }
    }
}
