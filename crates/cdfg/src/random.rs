//! Seeded random CDFG generation for property-based testing.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Cdfg, CdfgBuilder, OpKind, ValueId};

/// Parameters for [`random_cdfg`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomCdfgConfig {
    /// Number of operations to generate (at least 1).
    pub ops: usize,
    /// Number of primary inputs (at least 1).
    pub inputs: usize,
    /// Number of loop-carried state values.
    pub states: usize,
    /// Probability that an operation is a multiplication (the remainder is
    /// split between add and sub).
    pub mul_ratio: f64,
    /// Probability that a multiplication's right operand is a fresh constant
    /// (as in the paper's benchmarks, where all multiplies are by
    /// coefficients).
    pub const_coeff_ratio: f64,
}

impl Default for RandomCdfgConfig {
    fn default() -> Self {
        RandomCdfgConfig {
            ops: 20,
            inputs: 2,
            states: 2,
            mul_ratio: 0.3,
            const_coeff_ratio: 0.8,
        }
    }
}

/// Generates a valid random CDFG.
///
/// The generator biases operand selection toward recently produced values so
/// that the graph has realistic depth, guarantees every non-constant value is
/// consumed (unconsumed values become primary outputs), and closes every
/// state's feedback loop from a produced value.
///
/// # Panics
///
/// Panics if `config.ops == 0` or `config.inputs == 0`.
pub fn random_cdfg(config: &RandomCdfgConfig, seed: u64) -> Cdfg {
    assert!(config.ops > 0, "need at least one operation");
    assert!(config.inputs > 0, "need at least one input");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CdfgBuilder::new(format!("random_{seed}"));

    let mut pool: Vec<ValueId> = Vec::new();
    for i in 0..config.inputs {
        pool.push(b.input(format!("x{i}")));
    }
    let mut states = Vec::new();
    for i in 0..config.states {
        let s = b.state(format!("s{i}"));
        states.push(s);
        pool.push(s);
    }

    // Pick operands with a bias toward the tail of the pool (recent values)
    // to obtain chains rather than a flat fan-out graph.
    fn pick(rng: &mut StdRng, pool: &[ValueId]) -> ValueId {
        let n = pool.len();
        let r: f64 = rng.gen();
        let idx = ((1.0 - r * r) * n as f64) as usize;
        pool[idx.min(n - 1)]
    }

    let mut consumed: HashSet<ValueId> = HashSet::new();
    let mut produced = Vec::new();
    for i in 0..config.ops {
        let roll: f64 = rng.gen();
        let kind = if roll < config.mul_ratio {
            OpKind::Mul
        } else if roll < config.mul_ratio + (1.0 - config.mul_ratio) * 0.7 {
            OpKind::Add
        } else {
            OpKind::Sub
        };
        let left = pick(&mut rng, &pool);
        let right = if kind == OpKind::Mul && rng.gen_bool(config.const_coeff_ratio) {
            b.constant(rng.gen_range(2..64))
        } else {
            pick(&mut rng, &pool)
        };
        consumed.insert(left);
        consumed.insert(right);
        let out = b.op_labeled(kind, left, right, format!("n{i}"));
        pool.push(out);
        produced.push(out);
    }

    // Close the feedback loops from distinct late-produced values.
    for (i, &s) in states.iter().enumerate() {
        let src = produced[produced.len() - 1 - (i % produced.len())];
        b.feedback(s, src);
        consumed.insert(src);
    }

    // The builder rejects dead values, so every unconsumed value becomes a
    // primary output.
    let mut out_idx = 0;
    for &v in &pool {
        if !consumed.contains(&v) {
            b.mark_output(v, format!("y{out_idx}"));
            out_idx += 1;
        }
    }
    b.finish().expect("random graph construction is valid by design")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid() {
        for seed in 0..25 {
            let g = random_cdfg(&RandomCdfgConfig::default(), seed);
            g.validate().expect("random graph validates");
            assert_eq!(g.num_ops(), 20);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_cdfg(&RandomCdfgConfig::default(), 42);
        let b = random_cdfg(&RandomCdfgConfig::default(), 42);
        assert_eq!(a, b);
        let c = random_cdfg(&RandomCdfgConfig::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = RandomCdfgConfig { ops: 50, inputs: 3, states: 4, ..Default::default() };
        let g = random_cdfg(&cfg, 7);
        let st = g.stats();
        assert_eq!(st.ops, 50);
        assert_eq!(st.inputs, 3);
        assert_eq!(st.states, 4);
    }

    #[test]
    fn no_states_supported() {
        let cfg = RandomCdfgConfig { states: 0, ..Default::default() };
        let g = random_cdfg(&cfg, 1);
        assert_eq!(g.state_values().count(), 0);
    }

    #[test]
    fn larger_graphs_stay_valid() {
        let cfg = RandomCdfgConfig { ops: 200, inputs: 4, states: 6, ..Default::default() };
        for seed in [0, 99, 1234] {
            let g = random_cdfg(&cfg, seed);
            g.validate().expect("large random graph validates");
        }
    }
}
