//! Control/data flow graph (CDFG) substrate for the SALSA
//! extended-binding-model reproduction.
//!
//! This crate provides the behavioural input representation used by the
//! scheduling ([`salsa-sched`]) and allocation ([`salsa-alloc`]) crates of
//! this workspace: a dataflow graph of *operations* that consume and produce
//! *values*, with support for primary inputs/outputs, constant operands
//! (which are free in the paper's cost model) and **loop-carried state
//! values** — the `z^-1` delays of the filter benchmarks, expressed as an
//! input value fed back from a value of the previous iteration.
//!
//! The benchmark CDFGs evaluated by the paper — the fifth-order **Elliptic
//! Wave Filter** and an 8-point **Discrete Cosine Transform** — are provided
//! in [`benchmarks`], along with several auxiliary designs and a seeded
//! random-DFG generator for property testing.
//!
//! # Example
//!
//! ```
//! use salsa_cdfg::CdfgBuilder;
//!
//! # fn main() -> Result<(), salsa_cdfg::CdfgError> {
//! let mut b = CdfgBuilder::new("iir1");
//! let x = b.input("x");
//! let s = b.state("s");          // loop-carried value (z^-1 delay)
//! let k = b.constant(3);
//! let m = b.mul(s, k);           // s * 3
//! let y = b.add(x, m);           // x + s*3
//! b.feedback(s, y);              // next iteration: s <= y
//! b.mark_output(y, "y");
//! let graph = b.finish()?;
//! assert_eq!(graph.num_ops(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dot;
mod error;
mod eval;
mod fingerprint;
mod graph;
mod ids;
mod op;
mod random;
mod text;
mod value;

pub mod benchmarks;

pub use builder::CdfgBuilder;
pub use error::CdfgError;
pub use eval::{evaluate, wrap_addr, EvalResult};
pub use fingerprint::fnv1a_128;
pub use graph::{Cdfg, CdfgStats};
pub use ids::{ArrayId, OpId, ValueId};
pub use op::{OpKind, Operation};
pub use random::{random_cdfg, RandomCdfgConfig};
pub use text::{cdfg_to_text, parse_cdfg, ParseError, ParseErrorKind};
pub use value::{ArrayDecl, Use, Value, ValueSource};
