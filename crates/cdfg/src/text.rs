//! A plain-text CDFG interchange format with parser and serializer.
//!
//! The format is line-oriented; `#` starts a comment. Example:
//!
//! ```text
//! cdfg iir1
//! input x
//! state yprev
//! const k = 13
//! op scaled = mul yprev k
//! op y = add x scaled
//! feedback yprev <- y
//! output y
//! ```
//!
//! Memory arrays are declared with `array <name> <len>` (optionally
//! `array <name> <len> = w0 w1 ...` for initial contents) and accessed
//! with `op <out> = load <array> <addr>` and
//! `op <token> = store <array> <addr> <data>`.
//!
//! Names are the labels shown in reports; operations may reference any
//! name declared earlier (the format is topologically ordered, like the
//! builder API it maps onto).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{ArrayId, Cdfg, CdfgBuilder, OpKind, ValueId, ValueSource};

/// The category of a parse failure — structured enough for a serving
/// front end to map hostile input onto a machine-readable error payload
/// without scraping the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed line shape (wrong token count, bad literal, misplaced or
    /// missing `cdfg` header).
    Syntax,
    /// The line starts with a directive the format does not define.
    UnknownDirective,
    /// An `op` line names an operation kind outside
    /// `add|sub|mul|lt|load|store`.
    UnknownOpKind,
    /// A reference to an array name that was never declared.
    UnknownArray,
    /// A reference to a value name that was never declared (dangling
    /// operand, feedback or output reference).
    UnknownValue,
    /// A name declared twice.
    DuplicateDefinition,
    /// The lines parsed individually but the assembled graph is invalid
    /// (cycles, dead values, unclosed feedback).
    InvalidGraph,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParseErrorKind::Syntax => "syntax",
            ParseErrorKind::UnknownDirective => "unknown-directive",
            ParseErrorKind::UnknownOpKind => "unknown-op-kind",
            ParseErrorKind::UnknownValue => "unknown-value",
            ParseErrorKind::UnknownArray => "unknown-array",
            ParseErrorKind::DuplicateDefinition => "duplicate-definition",
            ParseErrorKind::InvalidGraph => "invalid-graph",
        })
    }
}

/// A parse failure, with 1-based line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text (0 for whole-input problems:
    /// empty input, graph-level validation).
    pub line: usize,
    /// 1-based byte column of the offending token within its line (0 when
    /// no single token is at fault).
    pub column: usize,
    /// The failure category.
    pub kind: ParseErrorKind,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "{}", self.message),
            (line, 0) => write!(f, "line {line}: {}", self.message),
            (line, column) => write!(f, "line {line}, column {column}: {}", self.message),
        }
    }
}

impl Error for ParseError {}

fn err(
    line: usize,
    column: usize,
    kind: ParseErrorKind,
    message: impl Into<String>,
) -> ParseError {
    ParseError { line, column, kind, message: message.into() }
}

/// Splits a comment-stripped line into `(1-based byte column, token)`
/// pairs, so errors can point at the offending token.
fn tokenize(line: &str) -> Vec<(usize, &str)> {
    let mut tokens = Vec::new();
    let mut start = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                tokens.push((s + 1, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        tokens.push((s + 1, &line[s..]));
    }
    tokens
}

/// Parses the text format into a validated graph.
///
/// ```
/// let graph = salsa_cdfg::parse_cdfg("\
/// cdfg scale
/// input x
/// const k = 3
/// op y = mul x k
/// output y
/// ")?;
/// assert_eq!(graph.num_ops(), 1);
/// # Ok::<(), salsa_cdfg::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the offending line, the byte column
/// of the faulty token and a [`ParseErrorKind`] on any syntax or semantic
/// problem (unknown names, duplicate definitions, invalid graphs) — the
/// parser never panics or aborts on malformed input, however hostile.
pub fn parse_cdfg(source: &str) -> Result<Cdfg, ParseError> {
    use ParseErrorKind as K;

    /// A deferred `feedback` line: the line number plus the
    /// (column, name) of the state and source tokens, resolved after
    /// every op has been seen.
    type PendingFeedback = (usize, (usize, String), (usize, String));

    let mut builder: Option<CdfgBuilder> = None;
    let mut names: HashMap<String, ValueId> = HashMap::new();
    let mut arrays: HashMap<String, ArrayId> = HashMap::new();
    let mut states: HashMap<String, ValueId> = HashMap::new();
    let mut outputs: Vec<(usize, usize, String, String)> = Vec::new();
    let mut feedbacks: Vec<PendingFeedback> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("");
        let tokens = tokenize(line);
        let Some(&(col0, tok0)) = tokens.first() else { continue };
        let b = match tok0 {
            "cdfg" => {
                if builder.is_some() {
                    return Err(err(line_no, col0, K::Syntax, "duplicate 'cdfg' header"));
                }
                let (_, name) = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, col0, K::Syntax, "cdfg needs a name"))?;
                builder = Some(CdfgBuilder::new(name));
                continue;
            }
            _ => builder.as_mut().ok_or_else(|| {
                err(line_no, col0, K::Syntax, "file must start with 'cdfg <name>'")
            })?,
        };
        let define = |(col, name): (usize, &str),
                      id: ValueId,
                      names: &mut HashMap<String, ValueId>|
         -> Result<(), ParseError> {
            if names.insert(name.to_string(), id).is_some() {
                return Err(err(
                    line_no,
                    col,
                    K::DuplicateDefinition,
                    format!("'{name}' defined twice"),
                ));
            }
            Ok(())
        };
        match tok0 {
            "input" => {
                let (col, name) = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, col0, K::Syntax, "input needs a name"))?;
                let id = b.input(name);
                define((col, name), id, &mut names)?;
            }
            "state" => {
                let (col, name) = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, col0, K::Syntax, "state needs a name"))?;
                let id = b.state(name);
                define((col, name), id, &mut names)?;
                states.insert(name.to_string(), id);
            }
            "const" => {
                // const <name> = <value>
                if tokens.len() != 4 || tokens[2].1 != "=" {
                    return Err(err(
                        line_no,
                        col0,
                        K::Syntax,
                        "expected 'const <name> = <integer>'",
                    ));
                }
                let value: i64 = tokens[3].1.parse().map_err(|_| {
                    err(
                        line_no,
                        tokens[3].0,
                        K::Syntax,
                        format!("'{}' is not an integer", tokens[3].1),
                    )
                })?;
                let id = b.constant(value);
                b.relabel(id, tokens[1].1);
                define(tokens[1], id, &mut names)?;
            }
            "array" => {
                // array <name> <len> [= w0 w1 ...]
                if tokens.len() < 3 || (tokens.len() > 3 && tokens[3].1 != "=") {
                    return Err(err(
                        line_no,
                        col0,
                        K::Syntax,
                        "expected 'array <name> <len> [= <w0> <w1> ...]'",
                    ));
                }
                let len: usize = tokens[2].1.parse().map_err(|_| {
                    err(
                        line_no,
                        tokens[2].0,
                        K::Syntax,
                        format!("'{}' is not a length", tokens[2].1),
                    )
                })?;
                let mut init = Vec::new();
                for &(col, word) in tokens.iter().skip(4) {
                    init.push(word.parse::<i64>().map_err(|_| {
                        err(line_no, col, K::Syntax, format!("'{word}' is not an integer"))
                    })?);
                }
                let id = b.array_init(tokens[1].1, len, init);
                if arrays.insert(tokens[1].1.to_string(), id).is_some() {
                    return Err(err(
                        line_no,
                        tokens[1].0,
                        K::DuplicateDefinition,
                        format!("array '{}' defined twice", tokens[1].1),
                    ));
                }
            }
            "op" => {
                // op <name> = <kind> <left> <right>
                // op <name> = load <array> <addr>
                // op <name> = store <array> <addr> <data>
                if tokens.len() < 4 || tokens[2].1 != "=" {
                    return Err(err(
                        line_no,
                        col0,
                        K::Syntax,
                        "expected 'op <name> = <kind> <operands...>'",
                    ));
                }
                let resolve = |(col, t): (usize, &str)| {
                    names.get(t).copied().ok_or_else(|| {
                        err(line_no, col, K::UnknownValue, format!("unknown value '{t}'"))
                    })
                };
                let resolve_array = |(col, t): (usize, &str)| {
                    arrays.get(t).copied().ok_or_else(|| {
                        err(line_no, col, K::UnknownArray, format!("unknown array '{t}'"))
                    })
                };
                let id = match tokens[3].1 {
                    "load" => {
                        if tokens.len() != 6 {
                            return Err(err(
                                line_no,
                                col0,
                                K::Syntax,
                                "expected 'op <name> = load <array> <addr>'",
                            ));
                        }
                        let array = resolve_array(tokens[4])?;
                        let addr = resolve(tokens[5])?;
                        b.load_labeled(array, addr, tokens[1].1)
                    }
                    "store" => {
                        if tokens.len() != 7 {
                            return Err(err(
                                line_no,
                                col0,
                                K::Syntax,
                                "expected 'op <name> = store <array> <addr> <data>'",
                            ));
                        }
                        let array = resolve_array(tokens[4])?;
                        let (addr, data) = (resolve(tokens[5])?, resolve(tokens[6])?);
                        b.store_labeled(array, addr, data, tokens[1].1)
                    }
                    kind_tok => {
                        let kind = match kind_tok {
                            "add" => OpKind::Add,
                            "sub" => OpKind::Sub,
                            "mul" => OpKind::Mul,
                            "lt" => OpKind::Lt,
                            other => {
                                return Err(err(
                                    line_no,
                                    tokens[3].0,
                                    K::UnknownOpKind,
                                    format!("unknown operation kind '{other}'"),
                                ))
                            }
                        };
                        if tokens.len() != 6 {
                            return Err(err(
                                line_no,
                                col0,
                                K::Syntax,
                                "expected 'op <name> = <kind> <left> <right>'",
                            ));
                        }
                        let (left, right) = (resolve(tokens[4])?, resolve(tokens[5])?);
                        b.op_labeled(kind, left, right, tokens[1].1)
                    }
                };
                define(tokens[1], id, &mut names)?;
            }
            "feedback" => {
                // feedback <state> <- <value>
                if tokens.len() != 4 || tokens[2].1 != "<-" {
                    return Err(err(
                        line_no,
                        col0,
                        K::Syntax,
                        "expected 'feedback <state> <- <value>'",
                    ));
                }
                feedbacks.push((
                    line_no,
                    (tokens[1].0, tokens[1].1.to_string()),
                    (tokens[3].0, tokens[3].1.to_string()),
                ));
            }
            "output" => {
                // output <value> [as <name>]
                let (col, value) = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, col0, K::Syntax, "output needs a value"))?;
                let label = match (tokens.get(2), tokens.get(3)) {
                    (Some(&(_, "as")), Some(&(_, alias))) => alias.to_string(),
                    (None, None) => value.to_string(),
                    _ => {
                        return Err(err(
                            line_no,
                            col0,
                            K::Syntax,
                            "expected 'output <value> [as <name>]'",
                        ))
                    }
                };
                outputs.push((line_no, col, value.to_string(), label));
            }
            other => {
                return Err(err(
                    line_no,
                    col0,
                    K::UnknownDirective,
                    format!("unknown directive '{other}'"),
                ))
            }
        }
    }

    let mut b = builder
        .ok_or_else(|| err(0, 0, K::Syntax, "empty input: missing 'cdfg <name>'"))?;
    for (line_no, (state_col, state), (from_col, from)) in feedbacks {
        let &sid = states.get(&state).ok_or_else(|| {
            err(line_no, state_col, K::UnknownValue, format!("'{state}' is not a state"))
        })?;
        let &vid = names.get(&from).ok_or_else(|| {
            err(line_no, from_col, K::UnknownValue, format!("unknown value '{from}'"))
        })?;
        b.feedback(sid, vid);
    }
    for (line_no, col, value, label) in outputs {
        let &vid = names.get(&value).ok_or_else(|| {
            err(line_no, col, K::UnknownValue, format!("unknown value '{value}'"))
        })?;
        b.mark_output(vid, label);
    }
    b.finish().map_err(|e| err(0, 0, K::InvalidGraph, e.to_string()))
}

/// Serializes a graph back to the text format (labels become names; a
/// parse of the output reproduces an isomorphic graph).
pub fn cdfg_to_text(graph: &Cdfg) -> String {
    use std::collections::{HashMap, HashSet};
    use std::fmt::Write as _;
    let mut out = String::new();
    // Canonical names: sanitized labels, disambiguated with the value id
    // only on collision — so serialize(parse(serialize(g))) is a fixpoint.
    let mut taken: HashSet<String> = HashSet::new();
    let mut names: HashMap<ValueId, String> = HashMap::new();
    for value in graph.values() {
        let mut n: String = value
            .label()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
            .collect();
        if n.is_empty() || n.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            n = format!("v{}", value.id().index());
        }
        if !taken.insert(n.clone()) {
            n = format!("{n}_{}", value.id().index());
            taken.insert(n.clone());
        }
        names.insert(value.id(), n);
    }
    let name_of = |v: ValueId| -> String { names[&v].clone() };
    // Array names live in their own namespace (references are positional).
    let mut array_taken: HashSet<String> = HashSet::new();
    let mut array_names: HashMap<ArrayId, String> = HashMap::new();
    for array in graph.arrays() {
        let mut n: String = array
            .label()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
            .collect();
        if n.is_empty() || n.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            n = format!("a{}", array.id().index());
        }
        if !array_taken.insert(n.clone()) {
            n = format!("{n}_{}", array.id().index());
            array_taken.insert(n.clone());
        }
        array_names.insert(array.id(), n);
    }
    // A load's unused right port is tied to a placeholder constant the
    // parser regenerates; such constants are omitted from the listing.
    let hidden: HashSet<ValueId> = graph
        .values()
        .filter(|v| {
            v.is_const()
                && !v.uses().is_empty()
                && v.uses().iter().all(|u| {
                    u.port == 1 && graph.op(u.op).kind() == OpKind::Load
                })
        })
        .map(|v| v.id())
        .collect();
    let _ = writeln!(out, "cdfg {}", graph.name());
    for value in graph.values() {
        match value.source() {
            ValueSource::Input if value.is_state() => {
                let _ = writeln!(out, "state {}", name_of(value.id()));
            }
            ValueSource::Input => {
                let _ = writeln!(out, "input {}", name_of(value.id()));
            }
            ValueSource::Const(c) => {
                if !hidden.contains(&value.id()) {
                    let _ = writeln!(out, "const {} = {}", name_of(value.id()), c);
                }
            }
            ValueSource::Op(_) => {}
        }
    }
    for array in graph.arrays() {
        let _ = write!(out, "array {} {}", array_names[&array.id()], array.len());
        if !array.init().is_empty() {
            let _ = write!(out, " =");
            for w in array.init() {
                let _ = write!(out, " {w}");
            }
        }
        let _ = writeln!(out);
    }
    for op in graph.ops() {
        match op.kind() {
            OpKind::Load => {
                let _ = writeln!(
                    out,
                    "op {} = load {} {}",
                    name_of(op.output()),
                    array_names[&op.array().expect("loads carry an array")],
                    name_of(op.input(0))
                );
                continue;
            }
            OpKind::Store => {
                let _ = writeln!(
                    out,
                    "op {} = store {} {} {}",
                    name_of(op.output()),
                    array_names[&op.array().expect("stores carry an array")],
                    name_of(op.input(0)),
                    name_of(op.input(1))
                );
                continue;
            }
            _ => {}
        }
        let kind = match op.kind() {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Lt => "lt",
            OpKind::Load | OpKind::Store => unreachable!("handled above"),
        };
        let _ = writeln!(
            out,
            "op {} = {kind} {} {}",
            name_of(op.output()),
            name_of(op.input(0)),
            name_of(op.input(1))
        );
    }
    for (src, state) in graph.feedback_sources() {
        let _ = writeln!(out, "feedback {} <- {}", name_of(state), name_of(src));
    }
    for value in graph.values().filter(|v| v.is_output()) {
        let _ = writeln!(out, "output {}", name_of(value.id()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const IIR: &str = "\
# first-order IIR
cdfg iir1
input x
state yprev
const k = 13
op scaled = mul yprev k
op y = add x scaled
feedback yprev <- y
output y
";

    #[test]
    fn parses_the_example() {
        let g = parse_cdfg(IIR).unwrap();
        assert_eq!(g.name(), "iir1");
        assert_eq!(g.num_ops(), 2);
        assert_eq!(g.state_values().count(), 1);
        assert_eq!(g.output_values().count(), 1);
    }

    #[test]
    fn roundtrips_every_benchmark() {
        for g in crate::benchmarks::all() {
            let text = cdfg_to_text(&g);
            let parsed = parse_cdfg(&text)
                .unwrap_or_else(|e| panic!("{} roundtrip: {e}\n{text}", g.name()));
            assert_eq!(parsed.num_ops(), g.num_ops(), "{}", g.name());
            assert_eq!(parsed.num_values(), g.num_values(), "{}", g.name());
            assert_eq!(parsed.stats().ops_by_kind, g.stats().ops_by_kind, "{}", g.name());
            assert_eq!(
                parsed.feedback_sources().count(),
                g.feedback_sources().count(),
                "{}",
                g.name()
            );
        }
    }

    #[test]
    fn reports_unknown_value_with_line() {
        let bad = "cdfg t\ninput x\nop y = add x z\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("'z'"));
    }

    #[test]
    fn reports_duplicate_definition() {
        let bad = "cdfg t\ninput x\ninput x\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn reports_missing_header() {
        let e = parse_cdfg("input x\n").unwrap_err();
        assert!(e.message.contains("cdfg <name>"));
        let e = parse_cdfg("# nothing\n").unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn reports_bad_operation_kind() {
        let bad = "cdfg t\ninput x\nop y = xor x x\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert!(e.message.contains("xor"));
        assert_eq!(e.kind, ParseErrorKind::UnknownOpKind);
        // 'xor' starts at byte 8 of "op y = xor x x" (1-based).
        assert_eq!((e.line, e.column), (3, 8));
    }

    #[test]
    fn columns_point_at_the_offending_token() {
        let bad = "cdfg t\ninput x\nop y = add x nosuch\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownValue);
        assert_eq!((e.line, e.column), (3, 14));
        assert_eq!(e.to_string(), "line 3, column 14: unknown value 'nosuch'");

        // Columns survive leading whitespace and trailing comments.
        let bad = "cdfg t\ninput x\n   op y = add x nosuch # comment\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!((e.line, e.column), (3, 17));

        let bad = "cdfg t\ninput x\nfrobnicate y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownDirective);
        assert_eq!((e.line, e.column), (3, 1));

        let bad = "cdfg t\ninput x\ninput x\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateDefinition);
        assert_eq!((e.line, e.column), (3, 7));
    }

    #[test]
    fn hostile_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "op",
            "cdfg",
            "cdfg t\nop\n",
            "cdfg t\nconst k =\n",
            "cdfg t\nconst k = banana\n",
            "cdfg t\nfeedback a b c d e\n",
            "cdfg t\noutput\n",
            "cdfg t\ncdfg u\n",
            "cdfg t\ninput x\nop y = add x\n",
            "cdfg t\ninput x\x00junk\n",
        ] {
            assert!(parse_cdfg(bad).is_err(), "expected an error for {bad:?}");
        }
    }

    #[test]
    fn output_aliases_work() {
        let src = "cdfg t\ninput a\nop s = add a a\noutput s as total\n";
        let g = parse_cdfg(src).unwrap();
        let out = g.output_values().next().unwrap();
        assert_eq!(g.value(out).label(), "total");
    }

    #[test]
    fn dangling_feedback_is_reported() {
        let bad = "cdfg t\ninput x\nstate s\nop y = add x s\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert!(e.message.contains("feedback"), "{e}");
    }
}
