//! A plain-text CDFG interchange format with parser and serializer.
//!
//! The format is line-oriented; `#` starts a comment. Example:
//!
//! ```text
//! cdfg iir1
//! input x
//! state yprev
//! const k = 13
//! op scaled = mul yprev k
//! op y = add x scaled
//! feedback yprev <- y
//! output y
//! ```
//!
//! Names are the labels shown in reports; operations may reference any
//! name declared earlier (the format is topologically ordered, like the
//! builder API it maps onto).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{Cdfg, CdfgBuilder, OpKind, ValueId, ValueSource};

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text (0 for end-of-input problems).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parses the text format into a validated graph.
///
/// ```
/// let graph = salsa_cdfg::parse_cdfg("\
/// cdfg scale
/// input x
/// const k = 3
/// op y = mul x k
/// output y
/// ")?;
/// assert_eq!(graph.num_ops(), 1);
/// # Ok::<(), salsa_cdfg::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on any syntax or
/// semantic problem (unknown names, duplicate definitions, invalid graphs).
pub fn parse_cdfg(source: &str) -> Result<Cdfg, ParseError> {
    let mut builder: Option<CdfgBuilder> = None;
    let mut names: HashMap<String, ValueId> = HashMap::new();
    let mut states: HashMap<String, ValueId> = HashMap::new();
    let mut outputs: Vec<(usize, String, String)> = Vec::new();
    let mut feedbacks: Vec<(usize, String, String)> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let b = match tokens[0] {
            "cdfg" => {
                if builder.is_some() {
                    return Err(err(line_no, "duplicate 'cdfg' header"));
                }
                let name = *tokens.get(1).ok_or_else(|| err(line_no, "cdfg needs a name"))?;
                builder = Some(CdfgBuilder::new(name));
                continue;
            }
            _ => builder
                .as_mut()
                .ok_or_else(|| err(line_no, "file must start with 'cdfg <name>'"))?,
        };
        let define = |name: &str,
                          id: ValueId,
                          names: &mut HashMap<String, ValueId>|
         -> Result<(), ParseError> {
            if names.insert(name.to_string(), id).is_some() {
                return Err(err(line_no, format!("'{name}' defined twice")));
            }
            Ok(())
        };
        match tokens[0] {
            "input" => {
                let name = *tokens.get(1).ok_or_else(|| err(line_no, "input needs a name"))?;
                let id = b.input(name);
                define(name, id, &mut names)?;
            }
            "state" => {
                let name = *tokens.get(1).ok_or_else(|| err(line_no, "state needs a name"))?;
                let id = b.state(name);
                define(name, id, &mut names)?;
                states.insert(name.to_string(), id);
            }
            "const" => {
                // const <name> = <value>
                if tokens.len() != 4 || tokens[2] != "=" {
                    return Err(err(line_no, "expected 'const <name> = <integer>'"));
                }
                let value: i64 = tokens[3]
                    .parse()
                    .map_err(|_| err(line_no, format!("'{}' is not an integer", tokens[3])))?;
                let id = b.constant(value);
                b.relabel(id, tokens[1]);
                define(tokens[1], id, &mut names)?;
            }
            "op" => {
                // op <name> = <kind> <left> <right>
                if tokens.len() != 6 || tokens[2] != "=" {
                    return Err(err(line_no, "expected 'op <name> = <kind> <left> <right>'"));
                }
                let kind = match tokens[3] {
                    "add" => OpKind::Add,
                    "sub" => OpKind::Sub,
                    "mul" => OpKind::Mul,
                    "lt" => OpKind::Lt,
                    other => {
                        return Err(err(line_no, format!("unknown operation kind '{other}'")))
                    }
                };
                let resolve = |t: &str| {
                    names
                        .get(t)
                        .copied()
                        .ok_or_else(|| err(line_no, format!("unknown value '{t}'")))
                };
                let (left, right) = (resolve(tokens[4])?, resolve(tokens[5])?);
                let id = b.op_labeled(kind, left, right, tokens[1]);
                define(tokens[1], id, &mut names)?;
            }
            "feedback" => {
                // feedback <state> <- <value>
                if tokens.len() != 4 || tokens[2] != "<-" {
                    return Err(err(line_no, "expected 'feedback <state> <- <value>'"));
                }
                feedbacks.push((line_no, tokens[1].to_string(), tokens[3].to_string()));
            }
            "output" => {
                // output <value> [as <name>]
                let value = *tokens.get(1).ok_or_else(|| err(line_no, "output needs a value"))?;
                let label = match (tokens.get(2), tokens.get(3)) {
                    (Some(&"as"), Some(&alias)) => alias.to_string(),
                    (None, None) => value.to_string(),
                    _ => return Err(err(line_no, "expected 'output <value> [as <name>]'")),
                };
                outputs.push((line_no, value.to_string(), label));
            }
            other => return Err(err(line_no, format!("unknown directive '{other}'"))),
        }
    }

    let mut b = builder.ok_or_else(|| err(0, "empty input: missing 'cdfg <name>'"))?;
    for (line_no, state, from) in feedbacks {
        let &sid = states
            .get(&state)
            .ok_or_else(|| err(line_no, format!("'{state}' is not a state")))?;
        let &vid = names
            .get(&from)
            .ok_or_else(|| err(line_no, format!("unknown value '{from}'")))?;
        b.feedback(sid, vid);
    }
    for (line_no, value, label) in outputs {
        let &vid = names
            .get(&value)
            .ok_or_else(|| err(line_no, format!("unknown value '{value}'")))?;
        b.mark_output(vid, label);
    }
    b.finish().map_err(|e| err(0, e.to_string()))
}

/// Serializes a graph back to the text format (labels become names; a
/// parse of the output reproduces an isomorphic graph).
pub fn cdfg_to_text(graph: &Cdfg) -> String {
    use std::collections::{HashMap, HashSet};
    use std::fmt::Write as _;
    let mut out = String::new();
    // Canonical names: sanitized labels, disambiguated with the value id
    // only on collision — so serialize(parse(serialize(g))) is a fixpoint.
    let mut taken: HashSet<String> = HashSet::new();
    let mut names: HashMap<ValueId, String> = HashMap::new();
    for value in graph.values() {
        let mut n: String = value
            .label()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
            .collect();
        if n.is_empty() || n.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            n = format!("v{}", value.id().index());
        }
        if !taken.insert(n.clone()) {
            n = format!("{n}_{}", value.id().index());
            taken.insert(n.clone());
        }
        names.insert(value.id(), n);
    }
    let name_of = |v: ValueId| -> String { names[&v].clone() };
    let _ = writeln!(out, "cdfg {}", graph.name());
    for value in graph.values() {
        match value.source() {
            ValueSource::Input if value.is_state() => {
                let _ = writeln!(out, "state {}", name_of(value.id()));
            }
            ValueSource::Input => {
                let _ = writeln!(out, "input {}", name_of(value.id()));
            }
            ValueSource::Const(c) => {
                let _ = writeln!(out, "const {} = {}", name_of(value.id()), c);
            }
            ValueSource::Op(_) => {}
        }
    }
    for op in graph.ops() {
        let kind = match op.kind() {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Lt => "lt",
        };
        let _ = writeln!(
            out,
            "op {} = {kind} {} {}",
            name_of(op.output()),
            name_of(op.input(0)),
            name_of(op.input(1))
        );
    }
    for (src, state) in graph.feedback_sources() {
        let _ = writeln!(out, "feedback {} <- {}", name_of(state), name_of(src));
    }
    for value in graph.values().filter(|v| v.is_output()) {
        let _ = writeln!(out, "output {}", name_of(value.id()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const IIR: &str = "\
# first-order IIR
cdfg iir1
input x
state yprev
const k = 13
op scaled = mul yprev k
op y = add x scaled
feedback yprev <- y
output y
";

    #[test]
    fn parses_the_example() {
        let g = parse_cdfg(IIR).unwrap();
        assert_eq!(g.name(), "iir1");
        assert_eq!(g.num_ops(), 2);
        assert_eq!(g.state_values().count(), 1);
        assert_eq!(g.output_values().count(), 1);
    }

    #[test]
    fn roundtrips_every_benchmark() {
        for g in crate::benchmarks::all() {
            let text = cdfg_to_text(&g);
            let parsed = parse_cdfg(&text)
                .unwrap_or_else(|e| panic!("{} roundtrip: {e}\n{text}", g.name()));
            assert_eq!(parsed.num_ops(), g.num_ops(), "{}", g.name());
            assert_eq!(parsed.num_values(), g.num_values(), "{}", g.name());
            assert_eq!(parsed.stats().ops_by_kind, g.stats().ops_by_kind, "{}", g.name());
            assert_eq!(
                parsed.feedback_sources().count(),
                g.feedback_sources().count(),
                "{}",
                g.name()
            );
        }
    }

    #[test]
    fn reports_unknown_value_with_line() {
        let bad = "cdfg t\ninput x\nop y = add x z\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("'z'"));
    }

    #[test]
    fn reports_duplicate_definition() {
        let bad = "cdfg t\ninput x\ninput x\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn reports_missing_header() {
        let e = parse_cdfg("input x\n").unwrap_err();
        assert!(e.message.contains("cdfg <name>"));
        let e = parse_cdfg("# nothing\n").unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn reports_bad_operation_kind() {
        let bad = "cdfg t\ninput x\nop y = xor x x\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert!(e.message.contains("xor"));
    }

    #[test]
    fn output_aliases_work() {
        let src = "cdfg t\ninput a\nop s = add a a\noutput s as total\n";
        let g = parse_cdfg(src).unwrap();
        let out = g.output_values().next().unwrap();
        assert_eq!(g.value(out).label(), "total");
    }

    #[test]
    fn dangling_feedback_is_reported() {
        let bad = "cdfg t\ninput x\nstate s\nop y = add x s\noutput y\n";
        let e = parse_cdfg(bad).unwrap_err();
        assert!(e.message.contains("feedback"), "{e}");
    }
}
