//! The validated CDFG container.

use std::collections::HashMap;
use std::fmt;

use crate::{
    ArrayDecl, ArrayId, CdfgError, OpId, OpKind, Operation, Use, Value, ValueId, ValueSource,
};

/// A validated, immutable control/data flow graph.
///
/// Operations are stored in topological order (the builder can only refer to
/// values that already exist; loop feedback is expressed by
/// [`Value::feedback_from`] rather than by graph cycles), so simple forward
/// iteration is a valid evaluation order.
///
/// Construct one with [`CdfgBuilder`](crate::CdfgBuilder) or take a benchmark
/// from [`benchmarks`](crate::benchmarks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdfg {
    pub(crate) name: String,
    pub(crate) ops: Vec<Operation>,
    pub(crate) values: Vec<Value>,
    pub(crate) arrays: Vec<ArrayDecl>,
}

impl Cdfg {
    /// The graph's name (used in reports and DOT output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of values (including constants).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of declared memory arrays.
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }

    /// Looks up an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Iterates over all array declarations.
    pub fn arrays(&self) -> impl ExactSizeIterator<Item = &ArrayDecl> + '_ {
        self.arrays.iter()
    }

    /// Iterates over all array ids.
    pub fn array_ids(&self) -> impl ExactSizeIterator<Item = ArrayId> {
        (0..self.arrays.len()).map(ArrayId::from_index)
    }

    /// `true` when the graph declares at least one memory array.
    pub fn has_memory(&self) -> bool {
        !self.arrays.is_empty()
    }

    /// Iterates over the memory operations (loads and stores) in id order.
    pub fn memory_ops(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter().filter(|o| o.kind().is_memory())
    }

    /// `true` if `value` is the token output of a [`OpKind::Store`]:
    /// a placeholder that is never stored, read, fed back, or observed.
    pub fn is_store_token(&self, value: ValueId) -> bool {
        self.values[value.index()]
            .source
            .op()
            .is_some_and(|op| self.ops[op.index()].kind == OpKind::Store)
    }

    /// Looks up an operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Looks up a value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Iterates over all operations in topological order.
    pub fn ops(&self) -> impl ExactSizeIterator<Item = &Operation> + '_ {
        self.ops.iter()
    }

    /// Iterates over all values in creation order.
    pub fn values(&self) -> impl ExactSizeIterator<Item = &Value> + '_ {
        self.values.iter()
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl ExactSizeIterator<Item = OpId> {
        (0..self.ops.len()).map(OpId::from_index)
    }

    /// Iterates over all value ids.
    pub fn value_ids(&self) -> impl ExactSizeIterator<Item = ValueId> {
        (0..self.values.len()).map(ValueId::from_index)
    }

    /// Iterates over the values that must be stored in registers: everything
    /// except constants.
    pub fn stored_values(&self) -> impl Iterator<Item = &Value> + '_ {
        self.values.iter().filter(|v| !v.is_const())
    }

    /// The ids of all loop-carried state values.
    pub fn state_values(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.values.iter().filter(|v| v.is_state()).map(|v| v.id)
    }

    /// The ids of all primary-output values.
    pub fn output_values(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.values.iter().filter(|v| v.is_output).map(|v| v.id)
    }

    /// Values that feed a state value at the iteration boundary, with the
    /// states they feed. One value may feed several states.
    pub fn feedback_sources(&self) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        self.values
            .iter()
            .filter_map(|v| v.feedback_from.map(|src| (src, v.id)))
    }

    /// Returns `true` if `value` is the feedback source of at least one
    /// state value (and must therefore stay live through the end of the
    /// schedule).
    pub fn feeds_state(&self, value: ValueId) -> bool {
        self.values.iter().any(|v| v.feedback_from == Some(value))
    }

    /// Operation counts by kind plus value-category counts.
    pub fn stats(&self) -> CdfgStats {
        let mut by_kind = HashMap::new();
        for op in &self.ops {
            *by_kind.entry(op.kind).or_insert(0usize) += 1;
        }
        CdfgStats {
            ops: self.ops.len(),
            ops_by_kind: by_kind,
            values: self.values.len(),
            inputs: self
                .values
                .iter()
                .filter(|v| v.source == ValueSource::Input && !v.is_state())
                .count(),
            states: self.values.iter().filter(|v| v.is_state()).count(),
            consts: self.values.iter().filter(|v| v.is_const()).count(),
            outputs: self.values.iter().filter(|v| v.is_output).count(),
            arrays: self.arrays.len(),
        }
    }

    /// Checks all structural invariants. The builder calls this from
    /// [`finish`](crate::CdfgBuilder::finish); it is public so that tests and
    /// tools that mutate graphs can re-validate.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; see [`CdfgError`].
    pub fn validate(&self) -> Result<(), CdfgError> {
        if self.ops.is_empty() {
            return Err(CdfgError::Empty);
        }
        let n_values = self.values.len();
        for op in &self.ops {
            for input in op.inputs {
                if input.index() >= n_values {
                    return Err(CdfgError::UnknownValue { value: input });
                }
                if input == op.output {
                    return Err(CdfgError::SelfLoop { op: op.id });
                }
            }
            if op.output.index() >= n_values {
                return Err(CdfgError::UnknownValue { value: op.output });
            }
            if self.values[op.output.index()].source != ValueSource::Op(op.id) {
                return Err(CdfgError::ProducerMismatch { value: op.output });
            }
        }
        for value in &self.values {
            if let ValueSource::Op(op) = value.source {
                if op.index() >= self.ops.len() || self.ops[op.index()].output != value.id {
                    return Err(CdfgError::ProducerMismatch { value: value.id });
                }
            }
            if let Some(src) = value.feedback_from {
                if src.index() >= n_values {
                    return Err(CdfgError::UnknownValue { value: src });
                }
                if self.values[src.index()].is_const() {
                    return Err(CdfgError::FeedbackFromConst { state: value.id });
                }
                if value.source != ValueSource::Input {
                    return Err(CdfgError::FeedbackIntoNonState { value: value.id });
                }
            }
            if value.is_const() && value.is_output {
                return Err(CdfgError::ConstOutput { value: value.id });
            }
            let fed_back = self.feeds_state(value.id);
            if self.is_store_token(value.id) {
                // Store tokens are pure placeholders: they must stay
                // unobservable (and are therefore exempt from the dead-value
                // rule — an empty lifetime is their defining property).
                if !value.uses.is_empty() || value.is_output || fed_back {
                    return Err(CdfgError::StoreTokenUsed { value: value.id });
                }
            } else if !value.is_const()
                && value.uses.is_empty()
                && !value.is_output
                && !fed_back
            {
                return Err(CdfgError::DeadValue { value: value.id });
            }
        }
        for array in &self.arrays {
            if array.len == 0 || array.init.len() > array.len {
                return Err(CdfgError::BadArrayShape { array: array.id });
            }
        }
        let mut reads = vec![0usize; self.arrays.len()];
        let mut writes = vec![0usize; self.arrays.len()];
        for op in &self.ops {
            match (op.kind.is_memory(), op.array) {
                (true, Some(array)) => {
                    if array.index() >= self.arrays.len() {
                        return Err(CdfgError::UnknownArray { op: op.id });
                    }
                    if op.kind == OpKind::Load {
                        reads[array.index()] += 1;
                    } else {
                        writes[array.index()] += 1;
                    }
                }
                (false, None) => {}
                _ => return Err(CdfgError::ArrayOpMismatch { op: op.id }),
            }
        }
        for array in &self.arrays {
            let (r, w) = (reads[array.id.index()], writes[array.id.index()]);
            if r > 0 && w > 0 {
                // Read-XOR-write per iteration keeps every access order
                // semantically equivalent, so scheduling needs no
                // memory-dependence edges.
                return Err(CdfgError::ArrayReadWrite { array: array.id });
            }
            if r == 0 && w == 0 {
                return Err(CdfgError::DeadArray { array: array.id });
            }
        }
        Ok(())
    }

    /// Recomputes the per-value use lists from the operation table. Used by
    /// the builder; exposed for tools that edit graphs in place.
    pub fn rebuild_uses(&mut self) {
        for value in &mut self.values {
            value.uses.clear();
        }
        for op_index in 0..self.ops.len() {
            let op = self.ops[op_index].clone();
            for (port, input) in op.inputs.into_iter().enumerate() {
                self.values[input.index()].uses.push(Use { op: op.id, port });
            }
        }
    }
}

impl fmt::Display for Cdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cdfg {} ({})", self.name, self.stats())?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        for (src, state) in self.feedback_sources() {
            writeln!(f, "  {state} <= {src}  (loop feedback)")?;
        }
        Ok(())
    }
}

/// Summary statistics of a CDFG, as reported by [`Cdfg::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdfgStats {
    /// Total operation count.
    pub ops: usize,
    /// Operation count per kind.
    pub ops_by_kind: HashMap<OpKind, usize>,
    /// Total value count (including constants).
    pub values: usize,
    /// Primary inputs that are not loop-carried states.
    pub inputs: usize,
    /// Loop-carried state values.
    pub states: usize,
    /// Constant values.
    pub consts: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Declared memory arrays.
    pub arrays: usize,
}

impl CdfgStats {
    /// Count of operations of one kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.ops_by_kind.get(&kind).copied().unwrap_or(0)
    }
}

impl fmt::Display for CdfgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops [{} add, {} sub, {} mul, {} cmp], {} in, {} state, {} const, {} out",
            self.ops,
            self.count(OpKind::Add),
            self.count(OpKind::Sub),
            self.count(OpKind::Mul),
            self.count(OpKind::Lt),
            self.inputs,
            self.states,
            self.consts,
            self.outputs,
        )?;
        if self.arrays > 0 {
            write!(
                f,
                ", {} array [{} ld, {} st]",
                self.arrays,
                self.count(OpKind::Load),
                self.count(OpKind::Store),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdfgBuilder;

    fn tiny() -> Cdfg {
        let mut b = CdfgBuilder::new("tiny");
        let x = b.input("x");
        let s = b.state("s");
        let k = b.constant(2);
        let m = b.mul(x, k);
        let y = b.add(m, s);
        b.feedback(s, y);
        b.mark_output(y, "y");
        b.finish().expect("tiny graph is valid")
    }

    #[test]
    fn stats_and_accessors() {
        let g = tiny();
        let st = g.stats();
        assert_eq!(st.ops, 2);
        assert_eq!(st.count(OpKind::Mul), 1);
        assert_eq!(st.count(OpKind::Add), 1);
        assert_eq!(st.inputs, 1);
        assert_eq!(st.states, 1);
        assert_eq!(st.consts, 1);
        assert_eq!(st.outputs, 1);
        assert_eq!(g.state_values().count(), 1);
        assert_eq!(g.output_values().count(), 1);
        assert_eq!(g.feedback_sources().count(), 1);
        assert!(!st.to_string().is_empty());
        assert!(g.to_string().contains("loop feedback"));
    }

    #[test]
    fn uses_are_derived() {
        let g = tiny();
        let x = g.values().find(|v| v.label() == "x").unwrap();
        assert_eq!(x.uses().len(), 1);
        assert_eq!(x.uses()[0].port, 0);
        let y = g.output_values().next().unwrap();
        assert!(g.feeds_state(y));
    }

    #[test]
    fn validate_detects_dead_value() {
        let mut g = tiny();
        // Forge a dead value.
        let id = ValueId::from_index(g.values.len());
        g.values.push(Value {
            id,
            source: ValueSource::Input,
            label: "dead".into(),
            uses: Vec::new(),
            feedback_from: None,
            is_output: false,
        });
        assert_eq!(g.validate(), Err(CdfgError::DeadValue { value: id }));
    }

    #[test]
    fn validate_detects_producer_mismatch() {
        let mut g = tiny();
        let first_out = g.ops[0].output;
        g.values[first_out.index()].source = ValueSource::Input;
        assert!(matches!(g.validate(), Err(CdfgError::ProducerMismatch { .. })));
    }
}
