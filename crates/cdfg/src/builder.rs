//! Fluent construction of CDFGs.

use crate::{
    ArrayDecl, ArrayId, Cdfg, CdfgError, OpId, OpKind, Operation, Value, ValueId, ValueSource,
};

/// Incremental builder for a [`Cdfg`].
///
/// Values must be created before they are used, which guarantees that the
/// finished operation list is in topological order. Loop-carried state is
/// expressed with [`state`](Self::state) + [`feedback`](Self::feedback)
/// rather than with back edges.
///
/// # Example
///
/// ```
/// use salsa_cdfg::CdfgBuilder;
///
/// # fn main() -> Result<(), salsa_cdfg::CdfgError> {
/// let mut b = CdfgBuilder::new("ma2");
/// let x0 = b.input("x0");
/// let x1 = b.state("x1");            // delayed sample
/// let half = b.constant(1);
/// let s = b.add(x0, x1);
/// let y = b.mul(s, half);
/// b.feedback(x1, x0);                // shift register: x1 <= x0
/// b.mark_output(y, "y");
/// let g = b.finish()?;
/// assert_eq!(g.num_ops(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CdfgBuilder {
    name: String,
    ops: Vec<Operation>,
    values: Vec<Value>,
    arrays: Vec<ArrayDecl>,
}

impl CdfgBuilder {
    /// Starts an empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CdfgBuilder {
            name: name.into(),
            ops: Vec::new(),
            values: Vec::new(),
            arrays: Vec::new(),
        }
    }

    fn push_value(
        &mut self,
        source: ValueSource,
        label: String,
        feedback_from: Option<ValueId>,
    ) -> ValueId {
        let id = ValueId::from_index(self.values.len());
        self.values.push(Value {
            id,
            source,
            label,
            uses: Vec::new(),
            feedback_from,
            is_output: false,
        });
        id
    }

    /// Adds a primary input value.
    pub fn input(&mut self, label: impl Into<String>) -> ValueId {
        self.push_value(ValueSource::Input, label.into(), None)
    }

    /// Adds a loop-carried state value (a `z^-1` delay). Close the loop later
    /// with [`feedback`](Self::feedback); [`finish`](Self::finish) rejects
    /// dangling states.
    pub fn state(&mut self, label: impl Into<String>) -> ValueId {
        // Marked by a placeholder feedback to itself until `feedback` is
        // called; `finish` reports states still in this condition.
        let id = self.push_value(ValueSource::Input, label.into(), None);
        self.values[id.index()].feedback_from = Some(id);
        id
    }

    /// Adds a constant coefficient value.
    pub fn constant(&mut self, c: i64) -> ValueId {
        self.push_value(ValueSource::Const(c), format!("c{c}"), None)
    }

    /// Declares a zero-initialized memory array of `len` words.
    pub fn array(&mut self, label: impl Into<String>, len: usize) -> ArrayId {
        self.array_init(label, len, Vec::new())
    }

    /// Declares a memory array with initial contents (shorter than `len`
    /// is zero-padded; longer is rejected by [`finish`](Self::finish)).
    pub fn array_init(
        &mut self,
        label: impl Into<String>,
        len: usize,
        init: Vec<i64>,
    ) -> ArrayId {
        let id = ArrayId::from_index(self.arrays.len());
        self.arrays.push(ArrayDecl { id, label: label.into(), len, init });
        id
    }

    /// Declares that state `state` receives the current-iteration value
    /// `from` at the iteration boundary.
    ///
    /// # Panics
    ///
    /// Panics if `state` was not created with [`state`](Self::state) or if it
    /// already has a feedback source.
    pub fn feedback(&mut self, state: ValueId, from: ValueId) {
        let v = &mut self.values[state.index()];
        assert_eq!(
            v.feedback_from,
            Some(state),
            "feedback target {state} must be an unbound state value"
        );
        v.feedback_from = Some(from);
    }

    /// Appends a binary operation of the given kind and returns its output
    /// value.
    pub fn op(&mut self, kind: OpKind, left: ValueId, right: ValueId) -> ValueId {
        self.op_labeled(kind, left, right, String::new())
    }

    /// Appends a labeled binary operation.
    pub fn op_labeled(
        &mut self,
        kind: OpKind,
        left: ValueId,
        right: ValueId,
        label: impl Into<String>,
    ) -> ValueId {
        assert!(!kind.is_memory(), "memory operations need an array: use load/store");
        self.push_op(kind, left, right, label.into(), None)
    }

    fn push_op(
        &mut self,
        kind: OpKind,
        left: ValueId,
        right: ValueId,
        mut label: String,
        array: Option<ArrayId>,
    ) -> ValueId {
        let id = OpId::from_index(self.ops.len());
        if label.is_empty() {
            label = format!("t{}", id.index());
        }
        let output = self.push_value(ValueSource::Op(id), label.clone(), None);
        self.ops.push(Operation { id, kind, inputs: [left, right], output, label, array });
        output
    }

    /// Appends an addition.
    pub fn add(&mut self, left: ValueId, right: ValueId) -> ValueId {
        self.op(OpKind::Add, left, right)
    }

    /// Appends a subtraction (`left - right`).
    pub fn sub(&mut self, left: ValueId, right: ValueId) -> ValueId {
        self.op(OpKind::Sub, left, right)
    }

    /// Appends a multiplication.
    pub fn mul(&mut self, left: ValueId, right: ValueId) -> ValueId {
        self.op(OpKind::Mul, left, right)
    }

    /// Appends a less-than comparison.
    pub fn lt(&mut self, left: ValueId, right: ValueId) -> ValueId {
        self.op(OpKind::Lt, left, right)
    }

    /// Appends a memory read of `array[addr]` and returns the loaded
    /// value. The unused right port is tied to a fresh placeholder
    /// constant (free in the cost model).
    pub fn load(&mut self, array: ArrayId, addr: ValueId) -> ValueId {
        self.load_labeled(array, addr, String::new())
    }

    /// [`load`](Self::load) with an explicit result label.
    pub fn load_labeled(
        &mut self,
        array: ArrayId,
        addr: ValueId,
        label: impl Into<String>,
    ) -> ValueId {
        let zero = self.constant(0);
        self.push_op(OpKind::Load, addr, zero, label.into(), Some(array))
    }

    /// Appends a memory write of `data` into `array[addr]` and returns the
    /// store's *token* output — a zero-storage placeholder that must not
    /// be read, output, or fed back.
    pub fn store(&mut self, array: ArrayId, addr: ValueId, data: ValueId) -> ValueId {
        self.store_labeled(array, addr, data, String::new())
    }

    /// [`store`](Self::store) with an explicit token label.
    pub fn store_labeled(
        &mut self,
        array: ArrayId,
        addr: ValueId,
        data: ValueId,
        label: impl Into<String>,
    ) -> ValueId {
        self.push_op(OpKind::Store, addr, data, label.into(), Some(array))
    }

    /// Marks `value` as a primary output and relabels it.
    pub fn mark_output(&mut self, value: ValueId, label: impl Into<String>) {
        let v = &mut self.values[value.index()];
        v.is_output = true;
        v.label = label.into();
    }

    /// Overrides the label of any value.
    pub fn relabel(&mut self, value: ValueId, label: impl Into<String>) {
        self.values[value.index()].label = label.into();
    }

    /// Validates and returns the finished graph.
    ///
    /// # Errors
    ///
    /// Returns a [`CdfgError`] if any structural invariant is violated — in
    /// particular [`CdfgError::DanglingState`] when a state value never
    /// received a [`feedback`](Self::feedback) edge.
    pub fn finish(self) -> Result<Cdfg, CdfgError> {
        let CdfgBuilder { name, ops, values, arrays } = self;
        for value in &values {
            if value.feedback_from == Some(value.id) {
                return Err(CdfgError::DanglingState { state: value.id });
            }
        }
        let mut graph = Cdfg { name, ops, values, arrays };
        graph.rebuild_uses();
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dangling_state_rejected() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        let s = b.state("s");
        let y = b.add(x, s);
        b.mark_output(y, "y");
        assert!(matches!(b.finish(), Err(CdfgError::DanglingState { .. })));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(CdfgBuilder::new("e").finish(), Err(CdfgError::Empty));
    }

    #[test]
    fn labels_default_and_override() {
        let mut b = CdfgBuilder::new("l");
        let x = b.input("x");
        let y = b.op_labeled(OpKind::Add, x, x, "sum");
        b.mark_output(y, "out");
        let g = b.finish().unwrap();
        assert_eq!(g.op(OpId::from_index(0)).label(), "sum");
        assert_eq!(g.value(y).label(), "out");
    }

    #[test]
    fn shift_register_feedback_from_input_is_legal() {
        let mut b = CdfgBuilder::new("shift");
        let x = b.input("x");
        let d1 = b.state("d1");
        let y = b.add(x, d1);
        b.feedback(d1, x);
        b.mark_output(y, "y");
        let g = b.finish().unwrap();
        let d1v = g.value(d1);
        assert!(d1v.is_state());
        assert_eq!(d1v.feedback_from(), Some(x));
    }

    #[test]
    #[should_panic(expected = "must be an unbound state value")]
    fn double_feedback_panics() {
        let mut b = CdfgBuilder::new("db");
        let x = b.input("x");
        let s = b.state("s");
        b.feedback(s, x);
        b.feedback(s, x);
    }
}
