//! PID controller loop benchmark.

use crate::{Cdfg, CdfgBuilder, OpKind};

/// Builds a discrete PID controller iteration:
///
/// ```text
/// e     = setpoint - measurement
/// integ = integ + e
/// deriv = e - e_prev
/// u     = Kp*e + Ki*integ + Kd*deriv
/// e_prev <= e, integ <= integ
/// ```
///
/// Three multiplications, five additions/subtractions, two loop-carried
/// states — a small, deeply sequential control loop whose states exercise
/// the iteration-boundary machinery.
pub fn pid() -> Cdfg {
    let mut b = CdfgBuilder::new("pid");
    let setpoint = b.input("setpoint");
    let measurement = b.input("measurement");
    let e_prev = b.state("e_prev");
    let integ = b.state("integ");
    let kp = b.constant(12);
    let ki = b.constant(3);
    let kd = b.constant(7);

    let e = b.op_labeled(OpKind::Sub, setpoint, measurement, "e");
    let integ_next = b.op_labeled(OpKind::Add, integ, e, "integ_next");
    let deriv = b.op_labeled(OpKind::Sub, e, e_prev, "deriv");
    let p_term = b.op_labeled(OpKind::Mul, e, kp, "p_term");
    let i_term = b.op_labeled(OpKind::Mul, integ_next, ki, "i_term");
    let d_term = b.op_labeled(OpKind::Mul, deriv, kd, "d_term");
    let pi = b.op_labeled(OpKind::Add, p_term, i_term, "pi");
    let u = b.op_labeled(OpKind::Add, pi, d_term, "u");

    b.feedback(e_prev, e);
    b.feedback(integ, integ_next);
    b.mark_output(u, "u");
    b.finish().expect("PID benchmark is valid")
}

#[cfg(test)]
mod tests {
    use crate::OpKind;

    #[test]
    fn pid_profile() {
        let g = super::pid();
        let st = g.stats();
        assert_eq!(st.ops, 8);
        assert_eq!(st.count(OpKind::Mul), 3);
        assert_eq!(st.count(OpKind::Add) + st.count(OpKind::Sub), 5);
        assert_eq!(st.states, 2);
        assert_eq!(st.outputs, 1);
    }
}
