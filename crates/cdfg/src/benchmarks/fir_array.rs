//! 8-tap FIR filter with its coefficients in memory arrays.
//!
//! The classic `fir16` benchmark bakes every coefficient into a constant
//! multiplier operand; this variant instead fetches the taps from
//! read-only coefficient arrays (ROMs in hardware), so every product
//! first requires a `load` — the memory-port pressure that exercises the
//! banked-memory binding subsystem. The taps are stored as a polyphase
//! decomposition — even-indexed taps in one array, odd-indexed taps in
//! another, the standard layout of a polyphase FIR — which gives the
//! bank allocator a real decision to make: the round-robin default
//! scatters the two ROMs over two banks, and consolidating them into one
//! (an `ArrayRebank` move) trades a whole bank of area against port
//! sharing. The delay line stays in scalar loop-carried state values,
//! keeping both arrays strictly read-only within an iteration.

use crate::{Cdfg, CdfgBuilder};

/// Symmetric 8-tap low-pass coefficients.
const TAPS: [i64; 8] = [-3, 7, 19, 31, 31, 19, 7, -3];

/// Builds the 8-tap array-coefficient FIR filter.
///
/// Two arrays (`taps_even` and `taps_odd`, 4 words each, read-only),
/// 8 loads, 8 multiplies, a 7-add reduction tree, and a 7-stage scalar
/// delay line.
pub fn fir_array() -> Cdfg {
    let mut b = CdfgBuilder::new("fir8a");
    let x = b.input("x");
    // Polyphase halves: taps_even holds taps 0,2,4,6; taps_odd 1,3,5,7.
    let even: Vec<i64> = TAPS.iter().copied().step_by(2).collect();
    let odd: Vec<i64> = TAPS.iter().copied().skip(1).step_by(2).collect();
    let taps_even = b.array_init("taps_even", even.len(), even);
    let taps_odd = b.array_init("taps_odd", odd.len(), odd);

    // Delay line d1..d7 (d0 is the live input).
    let mut delays = vec![x];
    for i in 1..TAPS.len() {
        delays.push(b.state(format!("d{i}")));
    }

    // Products: tap[i] * sample[i], each tap fetched from its phase's ROM.
    let mut products = Vec::new();
    for (i, &sample) in delays.iter().enumerate() {
        let addr = b.constant((i / 2) as i64);
        let rom = if i % 2 == 0 { taps_even } else { taps_odd };
        let tap = b.load_labeled(rom, addr, format!("t{i}"));
        products.push(b.op_labeled(crate::OpKind::Mul, tap, sample, format!("p{i}")));
    }

    // Balanced reduction tree.
    let mut layer = products;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 { b.add(pair[0], pair[1]) } else { pair[0] });
        }
        layer = next;
    }
    let y = layer[0];

    // Shift the delay line.
    for i in (2..TAPS.len()).rev() {
        b.feedback(delays[i], delays[i - 1]);
    }
    b.feedback(delays[1], x);
    b.mark_output(y, "y");
    b.finish().expect("fir_array benchmark is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    #[test]
    fn shape() {
        let g = fir_array();
        let st = g.stats();
        assert_eq!(st.arrays, 2);
        assert_eq!(st.count(OpKind::Load), 8);
        assert_eq!(st.count(OpKind::Mul), 8);
        assert_eq!(st.count(OpKind::Add), 7);
        assert_eq!(st.count(OpKind::Store), 0);
        assert_eq!(st.states, 7);
        assert_eq!(st.outputs, 1);
        assert!(g.arrays().all(|a| a.len() == 4));
        g.validate().expect("valid");
    }

    #[test]
    fn computes_a_convolution() {
        use std::collections::BTreeMap;
        let g = fir_array();
        let x = g.values().find(|v| v.label() == "x").unwrap().id();
        let y = g.output_values().next().unwrap();
        // Impulse response replays the taps.
        let inputs: Vec<BTreeMap<_, _>> =
            (0..10).map(|k| BTreeMap::from([(x, i64::from(k == 0))])).collect();
        let zeros: BTreeMap<_, _> = g.state_values().map(|s| (s, 0)).collect();
        let r = crate::evaluate(&g, &inputs, &zeros);
        let ys: Vec<i64> = r.outputs.iter().map(|o| o[&y]).collect();
        assert_eq!(&ys[..8], &TAPS, "impulse response equals the tap array");
        assert_eq!(&ys[8..], &[0, 0]);
    }
}
