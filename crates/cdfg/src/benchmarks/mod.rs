//! The benchmark CDFGs used by the paper's evaluation plus auxiliary designs.
//!
//! * [`ewf`] — fifth-order Elliptic Wave Filter (Table 2): 34 operations
//!   (26 additions, 8 constant multiplications), 8 loop-carried states,
//!   critical path 17 control steps with 1-step adders and 2-step
//!   multipliers. The machine-readable netlist of the classic benchmark
//!   [Paulin; Borriello & Detjens] is not available to this reproduction, so
//!   this is a faithful *wave-digital-filter reconstruction* with the
//!   published aggregate characteristics (see DESIGN.md §3).
//! * [`dct`] — 8-point Discrete Cosine Transform (Table 3, Figure 5) using
//!   Chen's fast factorization: 16 constant multiplications and 26
//!   additions/subtractions. The paper used a Philips-patent variant
//!   (25 add / 7 sub / 16 mul) that is not available; Chen's DCT has the
//!   same multiplier count and difficulty class.
//! * [`diffeq`] — the HAL differential-equation benchmark (6 mul, 2 add,
//!   2 sub, 1 compare).
//! * [`fir16`] — 16-tap FIR filter whose delay line exercises
//!   state-to-state feedback (pure register transfers).
//! * [`ar_lattice`] — 4-section autoregressive lattice filter
//!   (16 mul, 12 add).
//! * [`fft_stage`] — four radix-2 FFT butterflies with complex twiddles
//!   (16 mul, 24 add/sub): a wide, shallow sharing stress.
//! * [`pid`] — a discrete PID controller loop (3 mul, 5 add/sub,
//!   2 states): small and deeply sequential.
//! * [`fir_array`] — 8-tap FIR with its coefficients in two read-only
//!   polyphase ROMs (8 loads over 2 arrays): the smaller memory-binding
//!   workload, and the bank-consolidation case — the default pool gives
//!   each ROM its own bank and the M moves must discover that both fit
//!   in one.
//! * [`matmul`] — 2x2 matrix multiply over three arrays (8 loads,
//!   4 stores): the heavier memory-port stress, with write traffic.
//! * [`paper_example`] — a small 6-operation, 10-value CDFG standing in for
//!   the illustrative example of Figures 1-2.

mod ar;
mod dct;
mod diffeq;
mod ewf;
mod fft;
mod fir;
mod fir_array;
mod matmul;
mod paper_example;
mod pid;

pub use ar::ar_lattice;
pub use dct::dct;
pub use diffeq::diffeq;
pub use ewf::ewf;
pub use fft::fft_stage;
pub use fir::fir16;
pub use fir_array::fir_array;
pub use matmul::matmul;
pub use paper_example::paper_example;
pub use pid::pid;

/// Returns all benchmark graphs with their canonical names, for sweep-style
/// tests and benches.
pub fn all() -> Vec<crate::Cdfg> {
    vec![
        ewf(),
        dct(),
        diffeq(),
        fir16(),
        ar_lattice(),
        fft_stage(),
        pid(),
        paper_example(),
        fir_array(),
        matmul(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_benchmarks_validate() {
        for g in super::all() {
            g.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", g.name()));
        }
    }

    #[test]
    fn names_are_unique() {
        let graphs = super::all();
        let mut names: Vec<_> = graphs.iter().map(|g| g.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), graphs.len());
    }
}
