//! 2x2 matrix-multiply kernel over three memory arrays.
//!
//! Computes `C = A * B + x` (a per-element input bias keeps the kernel's
//! outputs live across iterations): the operand matrices are fetched from
//! two read-only arrays, and every result element is both written back to
//! a third (write-only) array and observed as a primary output. With
//! eight loads and four stores the kernel saturates memory ports much
//! harder than the FIR variant, and its write traffic exercises the
//! store path of the banked-memory model.

use crate::{Cdfg, CdfgBuilder, OpKind};

const A: [i64; 4] = [1, 2, 3, 4];
const B: [i64; 4] = [5, 6, 7, 8];

/// Builds the 2x2 matrix-multiply kernel (row-major flattened arrays).
pub fn matmul() -> Cdfg {
    let mut b = CdfgBuilder::new("mm2");
    let x = b.input("x");
    let a = b.array_init("ma", 4, A.to_vec());
    let bm = b.array_init("mb", 4, B.to_vec());
    let c = b.array("mc", 4);

    // Fetch both operand matrices once each.
    let mut av = Vec::new();
    let mut bv = Vec::new();
    for k in 0..4 {
        let addr = b.constant(k as i64);
        av.push(b.load_labeled(a, addr, format!("la{k}")));
        let addr = b.constant(k as i64);
        bv.push(b.load_labeled(bm, addr, format!("lb{k}")));
    }

    for i in 0..2 {
        for j in 0..2 {
            let p0 = b.op_labeled(OpKind::Mul, av[2 * i], bv[j], format!("p{i}{j}0"));
            let p1 = b.op_labeled(OpKind::Mul, av[2 * i + 1], bv[2 + j], format!("p{i}{j}1"));
            let sum = b.add(p0, p1);
            let out = b.op_labeled(OpKind::Add, sum, x, format!("c{i}{j}"));
            let addr = b.constant((2 * i + j) as i64);
            b.store(c, addr, out);
            b.mark_output(out, format!("y{i}{j}"));
        }
    }
    b.finish().expect("matmul benchmark is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = matmul();
        let st = g.stats();
        assert_eq!(st.arrays, 3);
        assert_eq!(st.count(OpKind::Load), 8);
        assert_eq!(st.count(OpKind::Store), 4);
        assert_eq!(st.count(OpKind::Mul), 8);
        assert_eq!(st.count(OpKind::Add), 8);
        assert_eq!(st.outputs, 4);
        g.validate().expect("valid");
    }

    #[test]
    fn computes_the_product() {
        use std::collections::BTreeMap;
        let g = matmul();
        let x = g.values().find(|v| v.label() == "x").unwrap().id();
        let r = crate::evaluate(&g, &[BTreeMap::from([(x, 0)])], &BTreeMap::new());
        let by_label: BTreeMap<&str, i64> = g
            .output_values()
            .map(|v| (g.value(v).label(), r.outputs[0][&v]))
            .collect();
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        assert_eq!(by_label["y00"], 19);
        assert_eq!(by_label["y01"], 22);
        assert_eq!(by_label["y10"], 43);
        assert_eq!(by_label["y11"], 50);
        // The result matrix was committed to the write-only array.
        let c = g.arrays().find(|a| a.label() == "mc").unwrap().id();
        assert_eq!(r.arrays[&c], vec![19, 22, 43, 50]);
    }
}
