//! 8-point Discrete Cosine Transform (Chen's fast factorization).

use crate::{Cdfg, CdfgBuilder, OpKind};

/// Builds the 8-point DCT CDFG after Chen, Smith and Fralick (1977):
/// 16 constant multiplications and 26 additions/subtractions (13 + 13),
/// 42 operations total, critical path 8 control steps with 1-step
/// adders and 2-step multipliers.
///
/// The paper's own DCT (Figure 5, from a Philips patent) has 25 add / 7 sub
/// / 16 mul; that netlist is not available, so Chen's factorization — the
/// same transform with the same multiplier count — stands in (DESIGN.md §3).
/// Cosine coefficients are represented by distinct placeholder constants;
/// the allocator never interprets constant values.
pub fn dct() -> Cdfg {
    let mut b = CdfgBuilder::new("dct");
    let x: Vec<_> = (0..8).map(|i| b.input(format!("x{i}"))).collect();

    // Placeholder fixed-point cosine coefficients C(k) ~ cos(k*pi/16).
    let c1 = b.constant(251);
    let s1 = b.constant(50);
    let c3 = b.constant(213);
    let s3 = b.constant(142);
    let c4 = b.constant(181);
    let c6 = b.constant(98);
    let s6 = b.constant(236);

    // Stage 1 butterflies.
    let a0 = b.op_labeled(OpKind::Add, x[0], x[7], "a0");
    let a1 = b.op_labeled(OpKind::Add, x[1], x[6], "a1");
    let a2 = b.op_labeled(OpKind::Add, x[2], x[5], "a2");
    let a3 = b.op_labeled(OpKind::Add, x[3], x[4], "a3");
    let o0 = b.op_labeled(OpKind::Sub, x[0], x[7], "o0");
    let o1 = b.op_labeled(OpKind::Sub, x[1], x[6], "o1");
    let o2 = b.op_labeled(OpKind::Sub, x[2], x[5], "o2");
    let o3 = b.op_labeled(OpKind::Sub, x[3], x[4], "o3");

    // Even half: 4-point DCT of (a0..a3).
    let e0 = b.op_labeled(OpKind::Add, a0, a3, "e0");
    let e1 = b.op_labeled(OpKind::Add, a1, a2, "e1");
    let e2 = b.op_labeled(OpKind::Sub, a1, a2, "e2");
    let e3 = b.op_labeled(OpKind::Sub, a0, a3, "e3");
    let sum = b.op_labeled(OpKind::Add, e0, e1, "esum");
    let dif = b.op_labeled(OpKind::Sub, e0, e1, "edif");
    let x0 = b.op_labeled(OpKind::Mul, sum, c4, "X0m");
    let x4 = b.op_labeled(OpKind::Mul, dif, c4, "X4m");
    let m2a = b.op_labeled(OpKind::Mul, e2, c6, "m2a");
    let m2b = b.op_labeled(OpKind::Mul, e3, s6, "m2b");
    let x2 = b.op_labeled(OpKind::Add, m2a, m2b, "X2a");
    let m6a = b.op_labeled(OpKind::Mul, e3, c6, "m6a");
    let m6b = b.op_labeled(OpKind::Mul, e2, s6, "m6b");
    let x6 = b.op_labeled(OpKind::Sub, m6a, m6b, "X6s");

    // Odd half: internal C4 rotation of the middle pair...
    let ta = b.op_labeled(OpKind::Sub, o2, o1, "ta");
    let tb = b.op_labeled(OpKind::Add, o2, o1, "tb");
    let ra = b.op_labeled(OpKind::Mul, ta, c4, "ra");
    let rb = b.op_labeled(OpKind::Mul, tb, c4, "rb");
    // ...then butterflies...
    let h0 = b.op_labeled(OpKind::Add, o0, rb, "h0");
    let h1 = b.op_labeled(OpKind::Sub, o0, rb, "h1");
    let h2 = b.op_labeled(OpKind::Sub, o3, ra, "h2");
    let h3 = b.op_labeled(OpKind::Add, o3, ra, "h3");
    // ...then two final rotations.
    let m1a = b.op_labeled(OpKind::Mul, h0, c1, "m1a");
    let m1b = b.op_labeled(OpKind::Mul, h3, s1, "m1b");
    let x1 = b.op_labeled(OpKind::Add, m1a, m1b, "X1a");
    let m7a = b.op_labeled(OpKind::Mul, h3, c1, "m7a");
    let m7b = b.op_labeled(OpKind::Mul, h0, s1, "m7b");
    let x7 = b.op_labeled(OpKind::Sub, m7a, m7b, "X7s");
    let m5a = b.op_labeled(OpKind::Mul, h1, c3, "m5a");
    let m5b = b.op_labeled(OpKind::Mul, h2, s3, "m5b");
    let x5 = b.op_labeled(OpKind::Add, m5a, m5b, "X5a");
    let m3a = b.op_labeled(OpKind::Mul, h2, c3, "m3a");
    let m3b = b.op_labeled(OpKind::Mul, h1, s3, "m3b");
    let x3 = b.op_labeled(OpKind::Sub, m3a, m3b, "X3s");

    for (v, name) in [
        (x0, "X0"),
        (x1, "X1"),
        (x2, "X2"),
        (x3, "X3"),
        (x4, "X4"),
        (x5, "X5"),
        (x6, "X6"),
        (x7, "X7"),
    ] {
        b.mark_output(v, name);
    }
    b.finish().expect("DCT benchmark is valid")
}

#[cfg(test)]
mod tests {
    use crate::OpKind;

    #[test]
    fn dct_has_chen_profile() {
        let g = super::dct();
        let st = g.stats();
        assert_eq!(st.ops, 42, "Chen 8-point DCT has 42 operations");
        assert_eq!(st.count(OpKind::Mul), 16, "16 multiplications");
        assert_eq!(
            st.count(OpKind::Add) + st.count(OpKind::Sub),
            26,
            "26 additions/subtractions"
        );
        assert_eq!(st.inputs, 8);
        assert_eq!(st.outputs, 8);
        assert_eq!(st.states, 0, "block transform, no loop-carried state");
    }

    #[test]
    fn every_multiply_has_one_constant_operand() {
        let g = super::dct();
        for op in g.ops().filter(|o| o.kind() == OpKind::Mul) {
            let const_ports = op
                .inputs()
                .iter()
                .filter(|&&v| g.value(v).is_const())
                .count();
            assert_eq!(const_ports, 1, "{op}");
        }
    }

    #[test]
    fn outputs_are_the_eight_coefficients() {
        let g = super::dct();
        let mut labels: Vec<_> = g
            .output_values()
            .map(|v| g.value(v).label().to_string())
            .collect();
        labels.sort();
        assert_eq!(labels, ["X0", "X1", "X2", "X3", "X4", "X5", "X6", "X7"]);
    }
}
