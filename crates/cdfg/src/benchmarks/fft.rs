//! Radix-2 FFT butterfly stage benchmark.

use crate::{Cdfg, CdfgBuilder, OpKind, ValueId};

/// Builds one stage of four radix-2 decimation-in-time butterflies over
/// complex data with constant twiddle factors:
///
/// ```text
/// t  = w * b        (4 real multiplies + 2 add/sub per complex multiply)
/// a' = a + t
/// b' = a - t
/// ```
///
/// Eight complex inputs (16 real values), four twiddle factors, 16 real
/// multiplications and 20 additions/subtractions — a wide, shallow graph
/// that stresses functional-unit sharing rather than storage.
pub fn fft_stage() -> Cdfg {
    let mut b = CdfgBuilder::new("fft_stage");
    let mut outs: Vec<ValueId> = Vec::new();
    for k in 0..4 {
        let ar = b.input(format!("a{k}_re"));
        let ai = b.input(format!("a{k}_im"));
        let br = b.input(format!("b{k}_re"));
        let bi = b.input(format!("b{k}_im"));
        let wr = b.constant(100 + k);
        let wi = b.constant(200 + k);
        // Complex multiply t = w * b.
        let m1 = b.op_labeled(OpKind::Mul, br, wr, format!("m{k}_rr"));
        let m2 = b.op_labeled(OpKind::Mul, bi, wi, format!("m{k}_ii"));
        let m3 = b.op_labeled(OpKind::Mul, br, wi, format!("m{k}_ri"));
        let m4 = b.op_labeled(OpKind::Mul, bi, wr, format!("m{k}_ir"));
        let tr = b.op_labeled(OpKind::Sub, m1, m2, format!("t{k}_re"));
        let ti = b.op_labeled(OpKind::Add, m3, m4, format!("t{k}_im"));
        // Butterfly outputs.
        let xr = b.op_labeled(OpKind::Add, ar, tr, format!("x{k}_re"));
        let xi = b.op_labeled(OpKind::Add, ai, ti, format!("x{k}_im"));
        let yr = b.op_labeled(OpKind::Sub, ar, tr, format!("y{k}_re"));
        let yi = b.op_labeled(OpKind::Sub, ai, ti, format!("y{k}_im"));
        outs.extend([xr, xi, yr, yi]);
    }
    for (i, v) in outs.into_iter().enumerate() {
        b.mark_output(v, format!("out{i}"));
    }
    b.finish().expect("FFT stage benchmark is valid")
}

#[cfg(test)]
mod tests {
    use crate::OpKind;

    #[test]
    fn fft_profile() {
        let g = super::fft_stage();
        let st = g.stats();
        assert_eq!(st.count(OpKind::Mul), 16);
        assert_eq!(st.count(OpKind::Add) + st.count(OpKind::Sub), 24);
        assert_eq!(st.inputs, 16);
        assert_eq!(st.outputs, 16);
        assert_eq!(st.states, 0);
    }
}
