//! The small illustrative CDFG of the paper's Figures 1-2.

use crate::{Cdfg, CdfgBuilder, OpKind};

/// Builds a 6-operation, 10-value CDFG in the spirit of the example of
/// Figures 1-2 (four inputs `v1..v4`, intermediate values `v5..v9`, one
/// output `v10`, allocatable on three functional units).
///
/// The figure's exact contents did not survive the scanned source; this
/// stand-in preserves what the figure illustrates — values with multi-step
/// lifetimes whose segments the SALSA model may place in different
/// registers. See DESIGN.md §4.
pub fn paper_example() -> Cdfg {
    let mut b = CdfgBuilder::new("paper_example");
    let v1 = b.input("v1");
    let v2 = b.input("v2");
    let v3 = b.input("v3");
    let v4 = b.input("v4");
    let v5 = b.op_labeled(OpKind::Add, v1, v2, "v5");
    let v6 = b.op_labeled(OpKind::Add, v3, v4, "v6");
    let v7 = b.op_labeled(OpKind::Add, v5, v6, "v7");
    let v8 = b.op_labeled(OpKind::Add, v7, v1, "v8");
    let v9 = b.op_labeled(OpKind::Add, v6, v4, "v9");
    let v10 = b.op_labeled(OpKind::Add, v8, v9, "v10");
    b.mark_output(v10, "v10");
    b.finish().expect("paper example is valid")
}

#[cfg(test)]
mod tests {
    #[test]
    fn example_profile() {
        let g = super::paper_example();
        let st = g.stats();
        assert_eq!(st.ops, 6);
        assert_eq!(st.values, 10);
        assert_eq!(st.inputs, 4);
        assert_eq!(st.outputs, 1);
    }

    #[test]
    fn v1_has_a_long_lifetime() {
        // v1 is read by the first and the fourth operation, so its lifetime
        // spans several control steps — the situation where segment-level
        // binding pays off.
        let g = super::paper_example();
        let v1 = g.values().find(|v| v.label() == "v1").unwrap();
        assert_eq!(v1.uses().len(), 2);
    }
}
