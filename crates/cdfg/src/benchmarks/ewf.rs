//! Fifth-order Elliptic Wave Filter (EWF) benchmark.

use crate::{Cdfg, CdfgBuilder, ValueId};

/// One two-port wave-digital-filter adaptor:
///
/// ```text
/// u = a + b          (difference node; realized on an adder)
/// m = gamma * u      (coefficient multiplication)
/// p = m + b          (through output)
/// q = m + a          (reflected output, usually into a delay)
/// ```
///
/// Three additions and one constant multiplication, as in the classic EWF
/// structure (8 adaptors x (3 add + 1 mul) + 2 extra adds = 26 add + 8 mul).
fn adaptor(
    b: &mut CdfgBuilder,
    idx: usize,
    a_in: ValueId,
    b_in: ValueId,
    gamma: i64,
) -> (ValueId, ValueId) {
    let g = b.constant(gamma);
    let u = b.op_labeled(crate::OpKind::Add, a_in, b_in, format!("u{idx}"));
    let m = b.op_labeled(crate::OpKind::Mul, u, g, format!("m{idx}"));
    let p = b.op_labeled(crate::OpKind::Add, m, b_in, format!("p{idx}"));
    let q = b.op_labeled(crate::OpKind::Add, m, a_in, format!("q{idx}"));
    (p, q)
}

/// Builds the EWF benchmark CDFG.
///
/// Characteristics (checked by tests here and in `salsa-sched`):
/// 34 operations — 26 additions and 8 multiplications, every multiplication
/// by a constant coefficient; 8 loop-carried state values (the filter's
/// `z^-1` delays); critical path of 17 control steps under the paper's
/// delay assumptions (adders 1 step, multipliers 2 steps).
///
/// The structure is a ladder of eight two-port adaptors: adaptors 1-4 are
/// chained combinationally from the sample input, adaptors 5-8 are chained
/// from state values (high-mobility section), and two extra additions close
/// the output and the fifth state — mirroring the serial-spine/parallel-wing
/// shape of the classic benchmark graph.
pub fn ewf() -> Cdfg {
    let mut b = CdfgBuilder::new("ewf");
    let x = b.input("x");
    let s: Vec<ValueId> = (1..=8).map(|i| b.state(format!("sv{i}"))).collect();

    // Serial spine: adaptors 1-4 driven by the input sample.
    let (p1, q1) = adaptor(&mut b, 1, x, s[0], 11);
    let (p2, q2) = adaptor(&mut b, 2, p1, s[1], 13);
    let (p3, q3) = adaptor(&mut b, 3, p2, s[2], 17);
    let (p4, q4) = adaptor(&mut b, 4, p3, s[3], 19);
    // Extra addition #1: output of the spine into the fifth delay.
    let g5 = b.op_labeled(crate::OpKind::Add, p4, s[4], "g5");

    // Parallel wing: adaptors 5-8 driven by state values only.
    let (p5, q5) = adaptor(&mut b, 5, s[4], s[5], 23);
    let (p6, q6) = adaptor(&mut b, 6, p5, s[6], 29);
    let (p7, q7) = adaptor(&mut b, 7, p6, s[7], 31);
    let (p8, q8) = adaptor(&mut b, 8, p7, s[0], 37);
    // Extra addition #2: the filter output.
    let y = b.op_labeled(crate::OpKind::Add, p8, q8, "y");

    b.feedback(s[0], q1);
    b.feedback(s[1], q2);
    b.feedback(s[2], q3);
    b.feedback(s[3], q4);
    b.feedback(s[4], g5);
    b.feedback(s[5], q5);
    b.feedback(s[6], q6);
    b.feedback(s[7], q7);
    b.mark_output(y, "y");
    b.finish().expect("EWF benchmark is valid")
}

#[cfg(test)]
mod tests {
    use crate::OpKind;

    #[test]
    fn ewf_has_published_profile() {
        let g = super::ewf();
        let st = g.stats();
        assert_eq!(st.ops, 34, "EWF has 34 operations");
        assert_eq!(st.count(OpKind::Add), 26, "26 additions");
        assert_eq!(st.count(OpKind::Mul), 8, "8 multiplications");
        assert_eq!(st.states, 8, "8 delay elements");
        assert_eq!(st.inputs, 1);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.consts, 8, "one coefficient per multiplier");
    }

    #[test]
    fn every_multiply_is_by_a_constant() {
        let g = super::ewf();
        for op in g.ops().filter(|o| o.kind() == OpKind::Mul) {
            let const_ports = op
                .inputs()
                .iter()
                .filter(|&&v| g.value(v).is_const())
                .count();
            assert_eq!(const_ports, 1, "{op} must have exactly one constant operand");
        }
    }

    #[test]
    fn all_states_fed_from_adds() {
        let g = super::ewf();
        for (src, _state) in g.feedback_sources() {
            let v = g.value(src);
            let op = v.source().op().expect("feedback from an operation");
            assert_eq!(g.op(op).kind(), OpKind::Add);
        }
    }
}
