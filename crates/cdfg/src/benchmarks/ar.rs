//! Autoregressive (AR) lattice filter benchmark.

use crate::{Cdfg, CdfgBuilder, OpKind};

/// Builds a 4-section normalized AR lattice filter: each section applies a
/// 2x2 constant rotation to the forward signal and a delayed state
/// (4 multiplications + 2 additions per section), followed by a 4-addition
/// output combination — 16 multiplications and 12 additions in total, the
/// profile of the classic "AR filter" HLS benchmark.
pub fn ar_lattice() -> Cdfg {
    let mut b = CdfgBuilder::new("ar_lattice");
    let x = b.input("x");
    let states: Vec<_> = (1..=4).map(|i| b.state(format!("g{i}"))).collect();

    let mut f = x;
    let mut updated = Vec::new();
    for (k, &g) in states.iter().enumerate() {
        let ca = b.constant(100 + k as i64);
        let cb = b.constant(200 + k as i64);
        let cc = b.constant(300 + k as i64);
        let cd = b.constant(400 + k as i64);
        let m1 = b.op_labeled(OpKind::Mul, f, ca, format!("a{k}f"));
        let m2 = b.op_labeled(OpKind::Mul, g, cb, format!("b{k}g"));
        let m3 = b.op_labeled(OpKind::Mul, f, cc, format!("c{k}f"));
        let m4 = b.op_labeled(OpKind::Mul, g, cd, format!("d{k}g"));
        let fk = b.op_labeled(OpKind::Add, m1, m2, format!("f{k}"));
        let gk = b.op_labeled(OpKind::Add, m3, m4, format!("gnew{k}"));
        b.feedback(g, gk);
        updated.push(gk);
        f = fk;
    }

    // Output combination (4 additions).
    let mut acc = f;
    for (k, &g) in updated.iter().enumerate() {
        acc = b.op_labeled(OpKind::Add, acc, g, format!("o{k}"));
    }
    b.mark_output(acc, "y");
    b.finish().expect("AR lattice benchmark is valid")
}

#[cfg(test)]
mod tests {
    use crate::OpKind;

    #[test]
    fn ar_profile() {
        let g = super::ar_lattice();
        let st = g.stats();
        assert_eq!(st.ops, 28);
        assert_eq!(st.count(OpKind::Mul), 16);
        assert_eq!(st.count(OpKind::Add), 12);
        assert_eq!(st.states, 4);
    }
}
