//! 16-tap FIR filter with an explicit delay line.

use crate::{Cdfg, CdfgBuilder, OpKind, ValueId};

/// Builds a 16-tap FIR filter:
///
/// ```text
/// y = sum(i = 0..16) c_i * x[n-i]
/// ```
///
/// The delay line is expressed as 15 loop-carried states shifted one
/// position per iteration (`d1 <= x`, `d2 <= d1`, ...). Shift feedbacks are
/// *pure register transfers* with no operation attached — precisely the kind
/// of data movement the SALSA model can route through pass-through
/// functional units, making this a good stress test for the extended
/// binding model.
///
/// 16 multiplications and 15 additions (balanced accumulation tree).
pub fn fir16() -> Cdfg {
    let mut b = CdfgBuilder::new("fir16");
    let x = b.input("x");
    let delays: Vec<ValueId> = (1..16).map(|i| b.state(format!("d{i}"))).collect();

    let mut taps = vec![x];
    taps.extend(&delays);
    let mut products = Vec::new();
    for (i, &tap) in taps.iter().enumerate() {
        let coeff = b.constant(3 + 2 * i as i64);
        products.push(b.op_labeled(OpKind::Mul, tap, coeff, format!("p{i}")));
    }

    // Balanced adder tree.
    let mut level = products;
    let mut tree_idx = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.op_labeled(OpKind::Add, pair[0], pair[1], format!("t{tree_idx}")));
                tree_idx += 1;
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let y = level[0];

    // Shift the delay line: d1 <= x, d2 <= d1, ...
    let mut prev = x;
    for &d in &delays {
        b.feedback(d, prev);
        prev = d;
    }
    b.mark_output(y, "y");
    b.finish().expect("FIR benchmark is valid")
}

#[cfg(test)]
mod tests {
    use crate::OpKind;

    #[test]
    fn fir_profile() {
        let g = super::fir16();
        let st = g.stats();
        assert_eq!(st.count(OpKind::Mul), 16);
        assert_eq!(st.count(OpKind::Add), 15);
        assert_eq!(st.states, 15);
        assert_eq!(st.inputs, 1);
    }

    #[test]
    fn delay_line_shifts_state_to_state() {
        let g = super::fir16();
        // At least one state is fed from another state (d2 <= d1), i.e. a
        // pure register transfer with no producing op.
        let state_fed_from_state = g
            .feedback_sources()
            .filter(|&(src, _)| g.value(src).is_state())
            .count();
        assert_eq!(state_fed_from_state, 14);
    }
}
