//! The HAL differential-equation benchmark (Paulin).

use crate::{Cdfg, CdfgBuilder, OpKind};

/// Builds the classic HAL benchmark: one iteration of the Euler method for
/// `y'' + 3xy' + 3y = 0`:
///
/// ```text
/// x1 = x + dx
/// u1 = u - (3 * x * u * dx) - (3 * y * dx)
/// y1 = y + u * dx
/// c  = x1 < a
/// ```
///
/// As drawn in the HAL paper (no common-subexpression sharing of `u*dx`):
/// 6 multiplications, 2 additions, 2 subtractions, 1 comparison — 11
/// operations, with loop-carried states `x`, `y`, `u`.
pub fn diffeq() -> Cdfg {
    let mut b = CdfgBuilder::new("diffeq");
    let a = b.input("a");
    let x = b.state("x");
    let y = b.state("y");
    let u = b.state("u");
    let three = b.constant(3);
    let dx = b.constant(1);

    let m1 = b.op_labeled(OpKind::Mul, x, three, "3x");
    let m2 = b.op_labeled(OpKind::Mul, m1, u, "3xu");
    let m3 = b.op_labeled(OpKind::Mul, m2, dx, "3xudx");
    let m4 = b.op_labeled(OpKind::Mul, y, three, "3y");
    let m5 = b.op_labeled(OpKind::Mul, m4, dx, "3ydx");
    let m6 = b.op_labeled(OpKind::Mul, u, dx, "udx");
    let s1 = b.op_labeled(OpKind::Sub, u, m3, "u-3xudx");
    let u1 = b.op_labeled(OpKind::Sub, s1, m5, "u1");
    let x1 = b.op_labeled(OpKind::Add, x, dx, "x1");
    let y1 = b.op_labeled(OpKind::Add, y, m6, "y1");
    let c = b.op_labeled(OpKind::Lt, x1, a, "c");

    b.feedback(x, x1);
    b.feedback(y, y1);
    b.feedback(u, u1);
    b.mark_output(c, "c");
    b.finish().expect("diffeq benchmark is valid")
}

#[cfg(test)]
mod tests {
    use crate::OpKind;

    #[test]
    fn diffeq_has_hal_profile() {
        let g = super::diffeq();
        let st = g.stats();
        assert_eq!(st.ops, 11);
        assert_eq!(st.count(OpKind::Mul), 6);
        assert_eq!(st.count(OpKind::Add), 2);
        assert_eq!(st.count(OpKind::Sub), 2);
        assert_eq!(st.count(OpKind::Lt), 1);
        assert_eq!(st.states, 3);
    }

    #[test]
    fn multiply_by_variable_exists() {
        // Unlike EWF/DCT, diffeq has variable*variable products (3x * u),
        // which exercises two-register multiplier operand delivery.
        let g = super::diffeq();
        let var_var = g
            .ops()
            .filter(|o| o.kind() == OpKind::Mul)
            .filter(|o| o.inputs().iter().all(|&v| !g.value(v).is_const()))
            .count();
        assert_eq!(var_var, 1);
    }
}
