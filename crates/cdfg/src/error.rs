//! Error type for CDFG construction and validation.

use std::error::Error;
use std::fmt;

use crate::{ArrayId, OpId, ValueId};

/// Errors detected while building or validating a [`Cdfg`](crate::Cdfg).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CdfgError {
    /// An operation refers to a value id that does not exist.
    UnknownValue {
        /// The out-of-range value id.
        value: ValueId,
    },
    /// A feedback edge targets a value that is not a state input.
    FeedbackIntoNonState {
        /// The value that was (incorrectly) given a feedback source.
        value: ValueId,
    },
    /// A feedback source is a constant, which cannot be stored.
    FeedbackFromConst {
        /// The state value whose feedback is constant.
        state: ValueId,
    },
    /// A state value was declared but never given a feedback source.
    DanglingState {
        /// The state value without feedback.
        state: ValueId,
    },
    /// A constant value was marked as a primary output.
    ConstOutput {
        /// The offending value.
        value: ValueId,
    },
    /// An operation consumes its own output (combinational cycle).
    SelfLoop {
        /// The offending operation.
        op: OpId,
    },
    /// A non-constant, non-output value is never read and never fed back:
    /// dead code that would silently distort resource counts.
    DeadValue {
        /// The unused value.
        value: ValueId,
    },
    /// The producer recorded for a value disagrees with the operation table.
    ProducerMismatch {
        /// The inconsistent value.
        value: ValueId,
    },
    /// The graph has no operations.
    Empty,
    /// A memory operation lacks an array, or a non-memory operation
    /// carries one.
    ArrayOpMismatch {
        /// The inconsistent operation.
        op: OpId,
    },
    /// A memory operation references an array id that does not exist.
    UnknownArray {
        /// The offending operation.
        op: OpId,
    },
    /// An array is both loaded and stored within one iteration, which the
    /// read-XOR-write memory model forbids.
    ArrayReadWrite {
        /// The array accessed both ways.
        array: ArrayId,
    },
    /// An array is never accessed: dead storage that would distort bank
    /// counts.
    DeadArray {
        /// The unused array.
        array: ArrayId,
    },
    /// An array has zero length or an initializer longer than the array.
    BadArrayShape {
        /// The malformed array.
        array: ArrayId,
    },
    /// A store token (the placeholder output of a `store`) is read, marked
    /// as an output, or fed back — tokens must stay unobservable.
    StoreTokenUsed {
        /// The misused token value.
        value: ValueId,
    },
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::UnknownValue { value } => {
                write!(f, "operation refers to unknown value {value}")
            }
            CdfgError::FeedbackIntoNonState { value } => {
                write!(f, "feedback edge targets non-state value {value}")
            }
            CdfgError::FeedbackFromConst { state } => {
                write!(f, "state {state} is fed back from a constant")
            }
            CdfgError::DanglingState { state } => {
                write!(f, "state {state} has no feedback source")
            }
            CdfgError::ConstOutput { value } => {
                write!(f, "constant {value} cannot be a primary output")
            }
            CdfgError::SelfLoop { op } => {
                write!(f, "operation {op} consumes its own output")
            }
            CdfgError::DeadValue { value } => {
                write!(f, "value {value} is never read, fed back, or output")
            }
            CdfgError::ProducerMismatch { value } => {
                write!(f, "producer of {value} disagrees with the operation table")
            }
            CdfgError::Empty => write!(f, "graph has no operations"),
            CdfgError::ArrayOpMismatch { op } => {
                write!(f, "operation {op} mixes up memory kind and array reference")
            }
            CdfgError::UnknownArray { op } => {
                write!(f, "operation {op} references an unknown array")
            }
            CdfgError::ArrayReadWrite { array } => {
                write!(f, "array {array} is both loaded and stored in one iteration")
            }
            CdfgError::DeadArray { array } => {
                write!(f, "array {array} is never accessed")
            }
            CdfgError::BadArrayShape { array } => {
                write!(f, "array {array} has zero length or an oversized initializer")
            }
            CdfgError::StoreTokenUsed { value } => {
                write!(f, "store token {value} must not be read, output, or fed back")
            }
        }
    }
}

impl Error for CdfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CdfgError::UnknownValue { value: ValueId::from_index(4) };
        assert!(e.to_string().contains("v4"));
        let e = CdfgError::SelfLoop { op: OpId::from_index(1) };
        assert!(e.to_string().contains("o1"));
        assert!(!CdfgError::Empty.to_string().is_empty());
    }
}
