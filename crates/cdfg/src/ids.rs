//! Index newtypes for CDFG elements.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }

            /// Returns the raw index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of an [`Operation`](crate::Operation) within a [`Cdfg`](crate::Cdfg).
    OpId,
    "o"
);

id_type!(
    /// Identifier of a [`Value`](crate::Value) within a [`Cdfg`](crate::Cdfg).
    ValueId,
    "v"
);

id_type!(
    /// Identifier of an [`ArrayDecl`](crate::ArrayDecl) within a
    /// [`Cdfg`](crate::Cdfg).
    ArrayId,
    "a"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let op = OpId::from_index(7);
        assert_eq!(op.index(), 7);
        assert_eq!(op.to_string(), "o7");
        let v = ValueId::from_index(0);
        assert_eq!(v.to_string(), "v0");
        assert_eq!(usize::from(v), 0);
        let a = ArrayId::from_index(2);
        assert_eq!(a.to_string(), "a2");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(OpId::from_index(1) < OpId::from_index(2));
        assert_eq!(ValueId::from_index(3), ValueId::from_index(3));
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn overflow_panics() {
        let _ = OpId::from_index(usize::MAX);
    }
}
