//! Operation kinds and the operation record.

use std::fmt;

use crate::{ArrayId, OpId, ValueId};

/// The kind of a dataflow operation.
///
/// The paper's benchmarks only require two-input arithmetic; the comparison
/// kind is included for the HAL differential-equation benchmark. Mapping of
/// kinds onto functional-unit classes (ALU vs. multiplier) is done by the
/// scheduling crate's FU library, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction (left minus right).
    Sub,
    /// Multiplication. In the benchmark CDFGs one operand is a constant
    /// coefficient, which is free in the paper's cost model.
    Mul,
    /// Less-than comparison (left < right), used by the `diffeq` benchmark.
    Lt,
    /// Memory read: left operand is the word address into the operation's
    /// array; the right operand is an unused placeholder constant. The
    /// result is the addressed word.
    Load,
    /// Memory write: left operand is the word address, right operand the
    /// data. The output is a zero-storage *token* value that is never read.
    Store,
}

impl OpKind {
    /// Returns `true` if swapping the two operands leaves the result
    /// unchanged, enabling the paper's *operand reverse* move (F3).
    pub fn is_commutative(self) -> bool {
        matches!(self, OpKind::Add | OpKind::Mul)
    }

    /// All operation kinds, in declaration order.
    pub fn all() -> [OpKind; 6] {
        [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Lt, OpKind::Load, OpKind::Store]
    }

    /// `true` for the memory-access kinds ([`Load`](Self::Load) and
    /// [`Store`](Self::Store)), which carry an [`ArrayId`] and execute on
    /// memory ports instead of arithmetic units.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Short mnemonic used in reports and DOT labels.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Lt => "<",
            OpKind::Load => "ld",
            OpKind::Store => "st",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A scheduled-CDFG operation: a binary operator that reads two values and
/// produces one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    pub(crate) id: OpId,
    pub(crate) kind: OpKind,
    pub(crate) inputs: [ValueId; 2],
    pub(crate) output: ValueId,
    pub(crate) label: String,
    /// The accessed array — `Some` exactly when `kind.is_memory()`.
    pub(crate) array: Option<ArrayId>,
}

impl Operation {
    /// This operation's id.
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The operator kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The two operand values, left then right.
    pub fn inputs(&self) -> [ValueId; 2] {
        self.inputs
    }

    /// The operand value read on the given port (0 = left, 1 = right).
    ///
    /// # Panics
    ///
    /// Panics if `port > 1`.
    pub fn input(&self, port: usize) -> ValueId {
        self.inputs[port]
    }

    /// The value this operation produces.
    pub fn output(&self) -> ValueId {
        self.output
    }

    /// Human-readable label (e.g. `"u3"` for an adaptor's difference node).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The array accessed by a memory operation (`Some` exactly when
    /// [`kind`](Self::kind)`().is_memory()`).
    pub fn array(&self) -> Option<ArrayId> {
        self.array
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.kind, self.array) {
            (OpKind::Load, Some(a)) => {
                write!(f, "{}: {} = ld {}[{}]", self.id, self.output, a, self.inputs[0])
            }
            (OpKind::Store, Some(a)) => {
                write!(
                    f,
                    "{}: {} = st {}[{}] <- {}",
                    self.id, self.output, a, self.inputs[0], self.inputs[1]
                )
            }
            _ => write!(
                f,
                "{}: {} = {} {} {}",
                self.id, self.output, self.inputs[0], self.kind, self.inputs[1]
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity() {
        assert!(OpKind::Add.is_commutative());
        assert!(OpKind::Mul.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
        assert!(!OpKind::Lt.is_commutative());
        assert!(!OpKind::Load.is_commutative());
        assert!(!OpKind::Store.is_commutative());
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::Add.is_memory());
        assert_eq!(OpKind::all().len(), 6);
    }

    #[test]
    fn display_forms() {
        assert_eq!(OpKind::Add.to_string(), "+");
        assert_eq!(OpKind::Lt.to_string(), "<");
        let op = Operation {
            id: OpId::from_index(2),
            kind: OpKind::Sub,
            inputs: [ValueId::from_index(0), ValueId::from_index(1)],
            output: ValueId::from_index(5),
            label: "d".into(),
            array: None,
        };
        assert_eq!(op.to_string(), "o2: v5 = v0 - v1");
        assert_eq!(op.input(0), ValueId::from_index(0));
        assert_eq!(op.label(), "d");
    }
}
