//! Warm-start end to end: the similarity sketch's renumbering
//! invariance (property-tested over random designs), the warm-vs-cold
//! cost contract at equal trial budget, and the `reallocate` verb's
//! full wire flow — provenance in the report, certification under
//! `verify: full`, and the guarantee that warm and cold runs of one
//! design never share a result-cache entry.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use proptest::prelude::*;
use salsa_cdfg::{parse_cdfg, random_cdfg, RandomCdfgConfig};
use salsa_serve::{
    build_warm_spec, parse_json, resolve_graph, run_artifact, AdmissionArtifact, GraphSource,
    Json, Knobs, SeedEntry, Server, ServerConfig, Sketch,
};

/// Re-spells a canonical CDFG: every op renamed and the op statements
/// emitted in a *different* (but still valid) topological order, so the
/// reparse numbers ops and values differently. Structure is untouched —
/// the sketch must not move at all.
fn renumbered(text: &str) -> String {
    let mut header = Vec::new();
    let mut ops: Vec<(String, String)> = Vec::new(); // (label, full line)
    let mut outputs = Vec::new();
    let mut defined: Vec<String> = Vec::new();
    for line in text.lines() {
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("op") => {
                let label = tokens.next().expect("op label").to_string();
                ops.push((label, line.to_string()));
            }
            Some("output") => outputs.push(line.to_string()),
            Some("input") | Some("state") | Some("const") | Some("array") => {
                defined.push(tokens.next().expect("decl name").to_string());
                header.push(line.to_string());
            }
            _ => header.push(line.to_string()),
        }
    }

    // Kahn's algorithm, preferring the *last* ready op — a different but
    // equally valid topological order whenever any two ops are
    // independent.
    let mut emitted: Vec<(String, String)> = Vec::new();
    let mut pending = ops;
    while !pending.is_empty() {
        let ready = pending
            .iter()
            .rposition(|(_, line)| {
                line.split_whitespace().skip(4).all(|operand| {
                    defined.iter().any(|d| d.as_str() == operand)
                        || emitted.iter().any(|(l, _)| l.as_str() == operand)
                        || operand.parse::<i64>().is_ok()
                })
            })
            .expect("canonical text is topologically ordered");
        let (label, line) = pending.remove(ready);
        defined.push(label.clone());
        emitted.push((label, line));
    }

    // Rename every op label in emission order; inputs keep their names.
    let renames: BTreeMap<String, String> = emitted
        .iter()
        .enumerate()
        .map(|(i, (label, _))| (label.clone(), format!("rn{i}")))
        .collect();
    let rename = |token: &str| renames.get(token).cloned().unwrap_or_else(|| token.to_string());

    let mut out = header.join("\n");
    for (_, line) in &emitted {
        let tokens: Vec<String> = line.split_whitespace().map(&rename).collect();
        out.push('\n');
        out.push_str(&tokens.join(" "));
    }
    for line in &outputs {
        let tokens: Vec<String> = line.split_whitespace().map(&rename).collect();
        out.push('\n');
        out.push_str(&tokens.join(" "));
    }
    out.push('\n');
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The sketch consults neither ids nor labels, so renaming every op
    /// and renumbering via a different topological order must land at
    /// distance exactly 0 — the invariance the seed index relies on to
    /// recognize a resubmitted design under fresh spelling.
    #[test]
    fn sketch_is_invariant_under_renumbering_and_relabeling(
        seed in 0u64..500,
        ops in 4usize..30,
        inputs in 1usize..4,
        mul_ratio in 0.0f64..0.8,
    ) {
        let cfg = RandomCdfgConfig {
            ops,
            inputs,
            states: 0,
            mul_ratio,
            const_coeff_ratio: 0.0,
            ..RandomCdfgConfig::default()
        };
        let graph = random_cdfg(&cfg, seed);
        let text = graph.canonical_text();
        let respelled = renumbered(&text);
        let reparsed = parse_cdfg(&respelled)
            .map_err(|e| TestCaseError::fail(format!("respelled text unparsable: {e}\n{respelled}")))?;
        let (a, b) = (Sketch::of(&graph), Sketch::of(&reparsed));
        prop_assert_eq!(a.distance(&b), 0, "sketch moved under renumbering:\n{}\n{}", text, respelled);
    }

    /// The same invariance over memory designs: arrays, loads and stores
    /// are structural mass like any other, and a respelling that
    /// renumbers every op must still land at distance exactly 0.
    #[test]
    fn sketch_invariance_holds_on_memory_graphs(
        seed in 0u64..500,
        ops in 6usize..30,
        inputs in 1usize..4,
        arrays in 1usize..4,
        mem_ratio in 0.05f64..0.5,
    ) {
        let cfg = RandomCdfgConfig {
            ops,
            inputs,
            states: 0,
            const_coeff_ratio: 0.0,
            arrays,
            mem_ratio,
            ..RandomCdfgConfig::default()
        };
        let graph = random_cdfg(&cfg, seed);
        prop_assert!(graph.has_memory());
        let text = graph.canonical_text();
        let respelled = renumbered(&text);
        let reparsed = parse_cdfg(&respelled)
            .map_err(|e| TestCaseError::fail(format!("respelled text unparsable: {e}\n{respelled}")))?;
        let (a, b) = (Sketch::of(&graph), Sketch::of(&reparsed));
        prop_assert_eq!(a.distance(&b), 0, "sketch moved under renumbering:\n{}\n{}", text, respelled);
    }
}

#[test]
fn memory_and_scalar_designs_never_seed_each_other() {
    // A memory design and its scalar look-alike (loads flattened to
    // arithmetic) bind incompatible resources — bank tables, memory
    // ports — so the sketch must hold them outside seeding distance even
    // when the surrounding arithmetic is identical.
    let mem = parse_cdfg(
        "cdfg m\narray t 4 = 1 2 3 4\ninput a\nop l0 = load t a\nop y = add l0 a\noutput y\n",
    )
    .unwrap();
    let scalar =
        parse_cdfg("cdfg s\ninput a\nop l0 = add a a\nop y = add l0 a\noutput y\n").unwrap();
    let (sm, ss) = (Sketch::of(&mem), Sketch::of(&scalar));
    let d = sm.distance(&ss);
    assert!(d > 0, "memory structure must register in the sketch");
    assert!(!sm.accepts(d), "a scalar winner must not warm-start a memory job (d={d})");
    assert!(!ss.accepts(d), "a memory winner must not warm-start a scalar job (d={d})");
}

/// One-add-flipped variant of a design's canonical text — the
/// incremental-edit shape the warm path exists for.
fn flipped_variant(canonical: &str) -> String {
    let variant = canonical.replacen("= add", "= sub", 1);
    assert_ne!(variant, canonical, "design has an add op to flip");
    variant
}

#[test]
fn warm_start_cost_never_exceeds_cold_at_equal_budget() {
    let knobs = Knobs { seed: 1, restarts: 2, threads: Some(1), ..Knobs::default() };
    let base = AdmissionArtifact::new(resolve_graph(&GraphSource::Bench("ewf".into())).unwrap());
    let (base_report, base_winner) = run_artifact(&base, &knobs, None).unwrap();
    let entry = SeedEntry {
        key: 0xb0b,
        graph: base.graph.clone(),
        parts: base_winner,
        cost: base_report.get("cost").and_then(Json::as_u64).unwrap(),
        sketch: base.sketch.clone(),
    };

    let variant =
        AdmissionArtifact::new(parse_cdfg(&flipped_variant(&base.canonical_text)).unwrap());
    let distance = variant.sketch.distance(&entry.sketch);
    assert!(variant.sketch.accepts(distance), "a one-op flip must stay seedable");

    let (cold, _) = run_artifact(&variant, &knobs, None).unwrap();
    let warm_spec = Arc::new(build_warm_spec(&entry, &variant.graph, distance));
    let warm_knobs = Knobs { warm: Some(warm_spec), ..knobs };
    let (warm, _) = run_artifact(&variant, &warm_knobs, None).unwrap();

    let cold_cost = cold.get("cost").and_then(Json::as_u64).unwrap();
    let warm_cost = warm.get("cost").and_then(Json::as_u64).unwrap();
    assert!(
        warm_cost <= cold_cost,
        "warm start must not lose ground at equal budget: warm={warm_cost} cold={cold_cost}"
    );

    // Provenance rides the report: the cold run has no warm_start
    // section, the warm run names its seed and how the search started.
    assert!(cold.get("warm_start").is_none());
    let warm_start = warm.get("warm_start").expect("warm_start section");
    assert_eq!(
        warm_start.get("source").and_then(Json::as_str),
        Some(format!("{:032x}", 0xb0b).as_str())
    );
    assert_eq!(warm_start.get("distance").and_then(Json::as_u64), Some(distance));
    let mode = warm_start.get("mode").and_then(Json::as_str).unwrap();
    assert!(
        ["seeded", "guided", "constructive"].contains(&mode),
        "unknown warm mode {mode}"
    );
    assert!(warm_start.get("trials_to_best").and_then(Json::as_u64).is_some());
}

fn send_json(stream: &mut TcpStream, request: &str) -> Json {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    parse_json(response.trim()).unwrap_or_else(|e| panic!("bad response {response:?}: {e:?}"))
}

#[test]
fn reallocate_verb_warm_starts_certifies_and_never_aliases_cold() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Base job: cold (the seed index is empty at admission), certified.
    let base_response = send_json(
        &mut stream,
        r#"{"cmd":"allocate","bench":"ewf","seed":1,"restarts":2,"threads":1,"verify":"full","timeout_ms":60000}"#,
    );
    assert_eq!(base_response.get("status").and_then(Json::as_str), Some("ok"));
    let base_id = base_response.get("id").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(base_id.len(), 32, "the ok response carries the job id");
    let base_report = base_response.get("report").unwrap();
    assert!(base_report.get("warm_start").is_none(), "nothing to seed the first job from");

    // The edited design: one op kind flipped in the base's canonical
    // text — the incremental resubmission `reallocate` exists for.
    let base_text =
        resolve_graph(&GraphSource::Bench("ewf".into())).unwrap().canonical_text();
    let edited = flipped_variant(&base_text);
    let knob_tail =
        r#""seed":1,"restarts":2,"threads":1,"verify":"full","timeout_ms":60000"#;
    let realloc = Json::obj(vec![
        ("cmd", Json::Str("reallocate".into())),
        ("base", Json::Str(base_id.clone())),
        ("cdfg", Json::Str(edited.clone())),
    ]);
    // Splice the knobs into the rendered request (same spelling as the
    // allocate requests above).
    let realloc_line =
        format!("{},{knob_tail}}}", realloc.to_string_compact().trim_end_matches('}'));

    let warm_response = send_json(&mut stream, &realloc_line);
    assert_eq!(
        warm_response.get("status").and_then(Json::as_str),
        Some("ok"),
        "{warm_response}"
    );
    let warm_id = warm_response.get("id").and_then(Json::as_str).unwrap().to_string();
    assert_ne!(warm_id, base_id, "an edited design is a different job");
    let warm_report = warm_response.get("report").unwrap();
    let warm_start = warm_report.get("warm_start").expect("warm provenance in the report");
    assert_eq!(
        warm_start.get("source").and_then(Json::as_str),
        Some(base_id.as_str()),
        "the seed's provenance is the base job"
    );
    assert!(warm_start.get("distance").and_then(Json::as_u64).unwrap() > 0);
    // The warm job certifies like any other: record, replay, verify.
    let cert = warm_report.get("certificate").expect("certificate");
    assert_eq!(cert.get("verdict").and_then(Json::as_str), Some("certified"));
    assert_eq!(cert.get("mode").and_then(Json::as_str), Some("full"));

    // The cold twin: the same edited design as a plain allocate. The
    // nearest seed is the edited design itself (distance 0), which the
    // server refuses to self-seed from — so this runs cold, lands on a
    // different cache key, and neither replays the warm payload.
    let cold_line = format!(
        r#"{{"cmd":"allocate","cdfg":{},{knob_tail}}}"#,
        Json::Str(edited.clone()).to_string_compact()
    );
    let cold_response = send_json(&mut stream, &cold_line);
    assert_eq!(cold_response.get("status").and_then(Json::as_str), Some("ok"));
    let cold_id = cold_response.get("id").and_then(Json::as_str).unwrap().to_string();
    assert_ne!(cold_id, warm_id, "warm and cold runs must never share a cache entry");
    assert!(cold_response.get("report").unwrap().get("warm_start").is_none());

    // Both entries replay independently and byte-identically.
    let warm_replay = send_json(&mut stream, &realloc_line);
    let cold_replay = send_json(&mut stream, &cold_line);
    assert_eq!(warm_replay.to_string_compact(), warm_response.to_string_compact());
    assert_eq!(cold_replay.to_string_compact(), cold_response.to_string_compact());

    // An expired/unknown base fails loudly rather than silently cold.
    let bogus = format!(
        r#"{{"cmd":"reallocate","base":"{:032x}","bench":"ewf",{knob_tail}}}"#,
        0xdead_beefu64
    );
    let err = send_json(&mut stream, &bogus);
    assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad-request"));

    // The operator counters saw the warm machinery work.
    let stats = send_json(&mut stream, r#"{"cmd":"stats"}"#);
    let warm_stats = stats.get("stats").and_then(|s| s.get("warm")).expect("warm stats");
    // Two reallocate requests landed (the replay re-attaches its seed
    // before discovering the cache hit).
    assert_eq!(warm_stats.get("reallocations").and_then(Json::as_u64), Some(2));
    assert!(warm_stats.get("seeds").and_then(Json::as_u64).unwrap() >= 2);
    let admission = warm_stats.get("admission").unwrap();
    assert!(admission.get("hits").and_then(Json::as_u64).unwrap() >= 1);

    server.shutdown();
}
