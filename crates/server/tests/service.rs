//! End-to-end service tests over real sockets: concurrent jobs, the
//! content-addressed cache (byte-identical replay, observable only via
//! the stats counters), per-job deadlines that do not poison their
//! worker, queue-overflow backpressure, and graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use salsa_serve::{parse_json, Json, Server, ServerConfig};
use salsa_wire::{Connection, Protocol};

fn connect(server: &Server) -> TcpStream {
    TcpStream::connect(server.local_addr()).expect("connect")
}

/// Sends one request line and reads one response line (raw bytes).
fn send_line(stream: &mut TcpStream, request: &str) -> String {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.ends_with('\n'), "response not newline-terminated: {response:?}");
    response.trim_end().to_string()
}

fn send_json(stream: &mut TcpStream, request: &str) -> Json {
    let raw = send_line(stream, request);
    parse_json(&raw).unwrap_or_else(|e| panic!("bad response {raw:?}: {e:?}"))
}

fn stats(server: &Server) -> Json {
    let mut stream = connect(server);
    let response = send_json(&mut stream, r#"{"cmd":"stats"}"#);
    response.get("stats").expect("stats body").clone()
}

fn stat_u64(stats: &Json, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("missing {path:?}"));
    }
    node.as_u64().unwrap_or_else(|| panic!("{path:?} not a u64"))
}

#[test]
fn concurrent_jobs_then_cache_replay_then_graceful_shutdown() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();

    // Two different benchmarks allocated concurrently on separate
    // connections.
    let ewf_request =
        r#"{"cmd":"allocate","bench":"ewf","seed":1,"restarts":2,"threads":1,"timeout_ms":60000}"#;
    let dct_request =
        r#"{"cmd":"allocate","bench":"dct","seed":1,"restarts":1,"threads":1,"timeout_ms":60000}"#;
    let (first_ewf, dct_response) = std::thread::scope(|scope| {
        let addr = server.local_addr();
        let ewf = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            send_line(&mut stream, ewf_request)
        });
        let dct = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            send_line(&mut stream, dct_request)
        });
        (ewf.join().unwrap(), dct.join().unwrap())
    });
    for (raw, design) in [(&first_ewf, "ewf"), (&dct_response, "dct")] {
        let json = parse_json(raw).unwrap();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"), "{raw}");
        let report = json.get("report").expect("report");
        assert_eq!(report.get("design").and_then(Json::as_str), Some(design));
        assert_eq!(report.get("verified").and_then(Json::as_bool), Some(true));
        assert!(report.get("cost").and_then(Json::as_u64).unwrap() > 0);
    }
    let after_misses = stats(&server);
    assert_eq!(stat_u64(&after_misses, &["accepted"]), 2);
    assert_eq!(stat_u64(&after_misses, &["completed"]), 2);
    assert_eq!(stat_u64(&after_misses, &["cache", "hits"]), 0);
    assert_eq!(stat_u64(&after_misses, &["cache", "misses"]), 2);

    // The identical request again: served from the cache — observable
    // only through the counters — and byte-identical to the first reply.
    let mut stream = connect(&server);
    let replay = send_line(&mut stream, ewf_request);
    assert_eq!(replay, first_ewf, "cache replay must be byte-identical");
    let after_hit = stats(&server);
    assert_eq!(stat_u64(&after_hit, &["cache", "hits"]), 1);
    assert_eq!(stat_u64(&after_hit, &["completed"]), 2, "no new job ran for the hit");
    assert_eq!(stat_u64(&after_hit, &["accepted"]), 2, "the hit never touched the queue");

    // Graceful shutdown over the wire: the drain acknowledges, the
    // server exits, and the port stops accepting.
    let mut stream = connect(&server);
    let bye = send_json(&mut stream, r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("shutting_down").and_then(Json::as_bool), Some(true));
    let addr = server.local_addr();
    server.join();
    std::thread::sleep(Duration::from_millis(50));
    let refused = TcpStream::connect_timeout(&addr.to_string().parse().unwrap(), Duration::from_millis(200));
    assert!(refused.is_err(), "listener still accepting after graceful shutdown");
}

#[test]
fn binary_and_json_clients_get_byte_identical_reports() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let request =
        r#"{"cmd":"allocate","bench":"ewf","seed":1,"restarts":2,"threads":1,"timeout_ms":60000}"#;

    // Legacy line-mode client first (populates the cache)...
    let mut stream = connect(&server);
    let json_reply = send_line(&mut stream, request);

    // ...then the binary protocol, negotiated for real (strict: the
    // connect fails if the hello is rebuffed), asking for the same job.
    let mut conn = Connection::connect(&addr, Protocol::Binary).expect("binary handshake");
    assert_eq!(conn.mode_name(), "binary");
    let binary_reply = conn.call(&parse_json(request).unwrap()).expect("binary call");
    assert_eq!(
        binary_reply.to_string_compact(),
        json_reply,
        "the two protocols must carry the identical response document"
    );

    // The hit came from the cache: one job ran, both protocols replayed
    // its payload.
    let snapshot = stats(&server);
    assert_eq!(stat_u64(&snapshot, &["completed"]), 1);
    assert_eq!(stat_u64(&snapshot, &["cache", "hits"]), 1);

    // Auto negotiation picks binary against this server; plain JSON mode
    // still works on the same port and sees the same bytes.
    let mut auto = Connection::connect(&addr, Protocol::Auto).expect("auto connect");
    assert_eq!(auto.mode_name(), "binary");
    let mut line_mode = Connection::connect(&addr, Protocol::Json).expect("json connect");
    assert_eq!(line_mode.mode_name(), "json");
    let from_auto = auto.call(&parse_json(request).unwrap()).expect("auto call");
    let from_line = line_mode.call(&parse_json(request).unwrap()).expect("line call");
    assert_eq!(from_auto.to_string_compact(), json_reply);
    assert_eq!(from_line.to_string_compact(), json_reply);

    server.shutdown();
}

#[test]
fn pipelined_requests_on_one_connection_and_wire_counters() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut conn = Connection::connect(&addr, Protocol::Binary).expect("binary connect");

    // Six requests in flight on one socket before any response is read;
    // correlation ids pair each answer to its question whatever order
    // completions arrive in.
    let benches = ["ewf", "dct", "paper_example", "ewf", "dct", "paper_example"];
    let ids: Vec<u64> = benches
        .iter()
        .map(|bench| {
            let request = format!(
                r#"{{"cmd":"allocate","bench":"{bench}","seed":2,"threads":1,"timeout_ms":60000}}"#
            );
            conn.send(&parse_json(&request).unwrap()).expect("pipelined send")
        })
        .collect();
    assert_eq!(conn.in_flight(), benches.len());
    // Collect out of submission order on purpose.
    for (id, bench) in ids.iter().zip(benches).rev() {
        let reply = conn.recv_for(*id).expect("pipelined recv");
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"), "{bench}");
        let design = reply.get("report").and_then(|r| r.get("design")).and_then(Json::as_str);
        assert_eq!(design, Some(bench), "correlation id must pair request and response");
    }
    assert_eq!(conn.in_flight(), 0);

    // The client-side counters saw all the traffic, and the server's
    // stats verb surfaces its own view of the same wire.
    let counts = conn.counts();
    assert_eq!(counts.frames_out, benches.len() as u64);
    assert_eq!(counts.frames_in, benches.len() as u64);
    assert!(counts.bytes_out > 0 && counts.bytes_in > 0);
    let snapshot = stats(&server);
    assert!(stat_u64(&snapshot, &["wire", "bytes_in"]) >= counts.bytes_out);
    assert!(stat_u64(&snapshot, &["wire", "frames_in"]) >= counts.frames_out);
    assert!(stat_u64(&snapshot, &["wire", "conns_opened"]) >= 1);

    server.shutdown();
}

#[test]
fn deadline_timeout_does_not_poison_the_worker() {
    // One worker: if the timed-out job left it wedged, the follow-up job
    // could never complete.
    let config = ServerConfig { workers: 1, queue_capacity: 4, ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut stream = connect(&server);

    // 4096 restarts of EWF cannot finish in 300 ms; the deadline trips
    // the cooperative cancel and the job reports a timeout.
    let timeout = send_json(
        &mut stream,
        r#"{"cmd":"allocate","bench":"ewf","restarts":4096,"threads":1,"timeout_ms":300}"#,
    );
    assert_eq!(timeout.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(timeout.get("kind").and_then(Json::as_str), Some("timeout"));

    // The same worker then serves a normal job.
    let ok = send_json(
        &mut stream,
        r#"{"cmd":"allocate","bench":"paper_example","seed":5,"timeout_ms":60000}"#,
    );
    assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"), "{ok}");

    let snapshot = stats(&server);
    assert_eq!(stat_u64(&snapshot, &["timeouts"]), 1);
    assert_eq!(stat_u64(&snapshot, &["completed"]), 1);
    server.shutdown();
}

#[test]
fn queue_overflow_yields_backpressure_rejection() {
    // One worker, queue of one: a running job plus a queued job saturate
    // the service; the third submission must be rejected, not buffered.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 125,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let slow = |seed: u64| {
        format!(
            r#"{{"cmd":"allocate","bench":"ewf","seed":{seed},"restarts":4096,"threads":1,"timeout_ms":1500}}"#
        )
    };
    std::thread::scope(|scope| {
        let occupant = scope.spawn(|| {
            let mut stream = TcpStream::connect(addr).unwrap();
            send_line(&mut stream, &slow(1))
        });
        std::thread::sleep(Duration::from_millis(250)); // worker now busy
        let queued = scope.spawn(|| {
            let mut stream = TcpStream::connect(addr).unwrap();
            send_line(&mut stream, &slow(2))
        });
        std::thread::sleep(Duration::from_millis(250)); // queue now full

        let mut stream = TcpStream::connect(addr).unwrap();
        let rejection = send_json(&mut stream, &slow(3));
        assert_eq!(
            rejection.get("status").and_then(Json::as_str),
            Some("rejected"),
            "{rejection}"
        );
        assert_eq!(rejection.get("retry_after_ms").and_then(Json::as_u64), Some(125));

        // The in-flight jobs still resolve (as timeouts, given their
        // short deadlines) — rejection sheds load without breaking them.
        occupant.join().unwrap();
        queued.join().unwrap();
    });
    let snapshot = stats(&server);
    assert!(stat_u64(&snapshot, &["rejected"]) >= 1);
    assert_eq!(stat_u64(&snapshot, &["accepted"]), 2);
    server.shutdown();
}
