//! Job execution: resolve the request's design, schedule it, run the
//! portfolio allocator under the job's cancel token, and serialize the
//! report. Shared by the server's workers and usable in-process by the
//! load generator (which drives the same path without a socket).

use salsa_alloc::{
    AllocContext, AllocError, Allocator, BindingParts, CancelToken, ImproveConfig, MoveSet,
};
use salsa_cdfg::{parse_cdfg, Cdfg};
use salsa_sched::{asap, fds_schedule, FuLibrary};

use crate::admission::AdmissionArtifact;
use crate::json::Json;
use crate::protocol::{
    canonical_bench_name, AllocRequest, ErrorKind, GraphSource, Knobs, ServeError,
};
use crate::report::report_json;

/// Resolves the request's design into a graph: benchmark lookup (with
/// alias mapping) or CDFG text parse (structured errors with positions).
///
/// Benchmark graphs are **canonicalized** — reparsed from their canonical
/// text — before use. Builder-constructed graphs can number ops and
/// values differently from the parse of their own canonical text, and
/// the serving layer's identities all flow through that text: the result
/// cache keys on it, and a certificate's trace artifact embeds it for
/// offline replay. Canonicalizing here makes every holder of the same
/// canonical text hold the *same graph*, IDs included, so a cached
/// response, a verifier-lane replay and an offline `salsa audit` all
/// re-derive the job bit-for-bit. (Parsed graphs are already a fixpoint
/// of this round-trip, so the `text` arm needs nothing extra.)
pub fn resolve_graph(source: &GraphSource) -> Result<Cdfg, ServeError> {
    match source {
        GraphSource::Bench(name) => {
            let canonical = canonical_bench_name(name);
            let graph = salsa_cdfg::benchmarks::all()
                .into_iter()
                .find(|g| g.name() == canonical)
                .ok_or_else(|| {
                    ServeError::new(
                        ErrorKind::BadRequest,
                        format!(
                            "unknown benchmark '{name}' (try ewf, dct, hal, fir, ar, fir8a or mm2)"
                        ),
                    )
                })?;
            parse_cdfg(&graph.canonical_text()).map_err(|e| ServeError::from_parse(&e))
        }
        GraphSource::Text(text) => parse_cdfg(text).map_err(|e| ServeError::from_parse(&e)),
    }
}

/// Runs the allocation described by `knobs` on `graph`, polling `cancel`
/// cooperatively, and returns the report object.
pub fn run_allocation(
    graph: &Cdfg,
    knobs: &Knobs,
    cancel: Option<CancelToken>,
) -> Result<Json, ServeError> {
    let library = if knobs.pipelined { FuLibrary::pipelined() } else { FuLibrary::standard() };
    let steps = knobs.steps.unwrap_or_else(|| asap(graph, &library).length);
    let schedule = fds_schedule(graph, &library, steps)
        .map_err(|e| ServeError::new(ErrorKind::Schedule, e.to_string()))?;

    let move_set = if knobs.traditional { MoveSet::traditional() } else { MoveSet::full() };
    let config =
        ImproveConfig { move_set, cancel, warm: knobs.warm.clone(), ..ImproveConfig::default() };
    let mut allocator = Allocator::new(graph, &schedule, &library)
        .seed(knobs.seed)
        .extra_registers(knobs.extra_regs)
        .restarts(knobs.restarts)
        .config(config)
        .plan(knobs.plan)
        .mem_moves(knobs.mem_moves);
    if let Some(threads) = knobs.threads {
        allocator = allocator.threads(threads);
    }
    if let Some(batch) = knobs.batch {
        allocator = allocator.batch(batch);
    }
    if let Some(cutoff) = knobs.cutoff {
        allocator = allocator.cutoff_factor(cutoff);
    }
    let result = allocator.run().map_err(map_alloc_err)?;
    Ok(report_json(graph, &schedule, knobs.seed, &result))
}

fn map_alloc_err(e: AllocError) -> ServeError {
    match e {
        AllocError::Cancelled => ServeError::new(
            ErrorKind::Timeout,
            "allocation cancelled before completion (deadline or shutdown)",
        ),
        other => ServeError::new(ErrorKind::Alloc, other.to_string()),
    }
}

/// Runs an allocation over an admission artifact: the schedule and the
/// compiled move plan come from the artifact's derivation cache, so a
/// repeat design pays neither force-directed scheduling nor plan
/// compilation again. Returns the report *and* the winner's context-free
/// binding image — the serving layer banks the latter in its seed index
/// to warm-start future near-duplicate jobs.
///
/// Result-identical to [`run_allocation`]: the cached schedule is the
/// same pure function of `(graph, knobs)`, and compiled plans never
/// affect trajectories, only wall-clock.
pub fn run_artifact(
    artifact: &AdmissionArtifact,
    knobs: &Knobs,
    cancel: Option<CancelToken>,
) -> Result<(Json, BindingParts), ServeError> {
    let library = if knobs.pipelined { FuLibrary::pipelined() } else { FuLibrary::standard() };
    let derived = artifact.derive(knobs)?;
    let move_set = if knobs.traditional { MoveSet::traditional() } else { MoveSet::full() };
    let config =
        ImproveConfig { move_set, cancel, warm: knobs.warm.clone(), ..ImproveConfig::default() };
    let mut allocator = Allocator::new(&artifact.graph, &derived.schedule, &library)
        .seed(knobs.seed)
        .extra_registers(knobs.extra_regs)
        .restarts(knobs.restarts)
        .config(config)
        .plan(knobs.plan)
        .mem_moves(knobs.mem_moves)
        .compiled_plan(derived.plan.clone());
    if let Some(threads) = knobs.threads {
        allocator = allocator.threads(threads);
    }
    if let Some(batch) = knobs.batch {
        allocator = allocator.batch(batch);
    }
    if let Some(cutoff) = knobs.cutoff {
        allocator = allocator.cutoff_factor(cutoff);
    }
    let result = allocator.run().map_err(map_alloc_err)?;
    let report = report_json(&artifact.graph, &derived.schedule, knobs.seed, &result);
    Ok((report, result.winner))
}

/// Rebuilds the allocation environment a serve job ran under — library,
/// schedule, resource pool and improvement configuration, all derived
/// from `(graph, knobs)` exactly as [`run_allocation`] derives them —
/// and hands it to `f`. This is the audit seam: trace recording and
/// replay must happen against a bit-identical context or the re-derived
/// trajectory diverges from the one the report describes. (The
/// `AllocContext` borrows the schedule, so the environment can only be
/// lent downward, not returned.)
pub fn with_replay_env<R>(
    graph: &Cdfg,
    knobs: &Knobs,
    f: impl FnOnce(&AllocContext<'_>, &ImproveConfig) -> R,
) -> Result<R, ServeError> {
    let library = if knobs.pipelined { FuLibrary::pipelined() } else { FuLibrary::standard() };
    let steps = knobs.steps.unwrap_or_else(|| asap(graph, &library).length);
    let schedule = fds_schedule(graph, &library, steps)
        .map_err(|e| ServeError::new(ErrorKind::Schedule, e.to_string()))?;
    let mut move_set = if knobs.traditional { MoveSet::traditional() } else { MoveSet::full() };
    // Mirror the allocation driver's memory upgrade bit-for-bit: on a
    // memory design with mem_moves on, the M kinds join the set in
    // `MoveKind::all()` order at their default weights.
    if knobs.mem_moves && graph.has_memory() {
        for (kind, _) in salsa_alloc::MoveKind::all() {
            if kind.is_memory() {
                move_set = move_set.with(kind);
            }
        }
    }
    // `eval_threads` is left at its default: it never affects the
    // trajectory (the batch engine is thread-count invariant), only the
    // wall-clock, and the verifier lane replays single-threaded anyway.
    let config = ImproveConfig {
        move_set,
        batch: knobs.batch.map(|b| b.max(1)),
        plan: knobs.plan,
        warm: knobs.warm.clone(),
        ..ImproveConfig::default()
    };
    let datapath = salsa_audit::build_datapath(graph, &schedule, &library, knobs.extra_regs);
    let ctx = AllocContext::new(graph, &schedule, &library, datapath)
        .map_err(|e| ServeError::new(ErrorKind::Alloc, e.to_string()))?;
    Ok(f(&ctx, &config))
}

/// Resolves and runs a whole request (no cache, no queue) — the
/// in-process path used by the load generator and by tests.
pub fn run_request(request: &AllocRequest, cancel: Option<CancelToken>) -> Result<Json, ServeError> {
    let graph = resolve_graph(&request.source)?;
    run_allocation(&graph, &request.knobs, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn bench_aliases_resolve_and_allocate() {
        for name in ["ewf", "hal", "fir", "ar"] {
            let g = resolve_graph(&GraphSource::Bench(name.into())).unwrap_or_else(|e| {
                panic!("{name}: {}", e.message);
            });
            assert!(g.num_ops() > 0, "{name}");
        }
        let err = resolve_graph(&GraphSource::Bench("nosuch".into())).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn bench_and_its_canonical_text_resolve_to_the_same_graph() {
        // The cache-key argument requires it: a `bench` request and a
        // `text` request carrying that benchmark's canonical form share a
        // key, so they must resolve to the *same graph*, IDs included —
        // and the trace artifact's offline replay reparses that text.
        //
        // Every registered benchmark is covered, not a hand-kept list: a
        // newly added builder-constructed graph (whose op/value numbering
        // can differ from the parse of its own canonical text — the
        // memory benchmarks fir8a/mm2 are built that way) must land here
        // automatically or its serve-layer identities silently fork.
        for g in salsa_cdfg::benchmarks::all() {
            let name = g.name().to_string();
            let by_name = resolve_graph(&GraphSource::Bench(name.clone())).unwrap();
            let by_text = resolve_graph(&GraphSource::Text(by_name.canonical_text())).unwrap();
            assert_eq!(by_name, by_text, "{name}: bench and text resolution diverge");
        }
        // The memory workloads resolve through their aliases too.
        for alias in ["fir-array", "matmul"] {
            let g = resolve_graph(&GraphSource::Bench(alias.into())).unwrap();
            assert!(g.has_memory(), "{alias} should resolve to a memory benchmark");
        }
    }

    #[test]
    fn text_source_reports_structured_parse_errors() {
        let err = resolve_graph(&GraphSource::Text(
            "cdfg t\ninput x\nop y = add x nosuch\noutput y\n".into(),
        ))
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
        assert_eq!(err.line, Some(3));
        assert!(err.column.is_some());
    }

    #[test]
    fn identical_requests_produce_identical_reports() {
        // The cache-soundness property, exercised end to end: same design
        // + same knobs ⇒ byte-identical report apart from timing, and in
        // particular identical cost/breakdown.
        let knobs = Knobs { restarts: 2, threads: Some(2), ..Knobs::default() };
        let graph = resolve_graph(&GraphSource::Bench("paper_example".into())).unwrap();
        let a = run_allocation(&graph, &knobs, None).unwrap();
        let b = run_allocation(&graph, &knobs, None).unwrap();
        assert_eq!(
            a.get("cost").and_then(Json::as_u64),
            b.get("cost").and_then(Json::as_u64)
        );
        assert_eq!(
            a.get("breakdown").map(Json::to_string_compact),
            b.get("breakdown").map(Json::to_string_compact)
        );
        assert_eq!(
            a.get("portfolio").and_then(|p| p.get("winner_slot")).and_then(Json::as_u64),
            b.get("portfolio").and_then(|p| p.get("winner_slot")).and_then(Json::as_u64)
        );
    }

    #[test]
    fn expired_deadline_yields_timeout_not_panic() {
        let knobs = Knobs { restarts: 4, threads: Some(1), ..Knobs::default() };
        let graph = resolve_graph(&GraphSource::Bench("ewf".into())).unwrap();
        // A deadline already in the past: the search must bail out at its
        // first poll with Cancelled, mapped to a timeout error.
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let err = run_allocation(&graph, &knobs, Some(token)).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Timeout);
    }

    #[test]
    fn infeasible_steps_yield_schedule_error() {
        let knobs = Knobs { steps: Some(1), ..Knobs::default() };
        let graph = resolve_graph(&GraphSource::Bench("ewf".into())).unwrap();
        let err = run_allocation(&graph, &knobs, None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Schedule);
    }
}
