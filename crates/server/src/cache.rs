//! Content-addressed result cache: completed allocation responses keyed
//! by the 128-bit FNV-1a fingerprint of `(canonical CDFG text, search
//! knobs)`.
//!
//! Soundness rests on two properties established elsewhere in the
//! workspace: the canonical text is a *fixpoint* of `parse ∘ print`
//! (spelling variants of the same design collapse to one key — see
//! `crates/cdfg/tests/canonical.rs`), and the portfolio search is
//! *deterministic* for identical inputs (same graph + same knobs ⇒ same
//! winning allocation). An exact hit can therefore replay the stored
//! response **bytes** — not a re-rendering — so a cached reply is
//! byte-identical to the one the original job produced. Entries are
//! [`Payload`]s (one JSON document with lazily cached text and binary
//! renderings), so one entry serves line-mode and binary-mode clients
//! their respective verbatim bytes.
//!
//! The cache is bounded with FIFO eviction: allocation responses are a
//! few KiB and jobs are expensive, so recency tracking buys little over
//! insertion order here.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use salsa_wire::frame::Payload;

struct Inner {
    map: HashMap<u128, Arc<Payload>>,
    order: VecDeque<u128>,
}

/// Bounded, thread-safe response cache.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` responses (min 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting the access as a hit or miss.
    pub fn get(&self, key: u128) -> Option<Arc<Payload>> {
        let inner = self.inner.lock().expect("cache poisoned");
        match inner.map.get(&key) {
            Some(bytes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(bytes))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `response` under `key`, evicting the oldest entry when at
    /// capacity. Re-inserting an existing key refreshes the bytes without
    /// growing the cache.
    pub fn insert(&self, key: u128, response: Arc<Payload>) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.insert(key, response).is_some() {
            return; // key already tracked in `order`
        }
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits over total lookups, in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 { 0.0 } else { hits / total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &str) -> Arc<Payload> {
        Arc::new(Payload::new(salsa_wire::json::Json::Str(s.into())))
    }

    #[test]
    fn hit_returns_the_exact_stored_bytes() {
        let cache = ResultCache::new(4);
        assert!(cache.get(1).is_none());
        let stored = Arc::new(Payload::new(salsa_wire::json::parse_json("{\"status\":\"ok\"}").unwrap()));
        cache.insert(1, Arc::clone(&stored));
        let got = cache.get(1).expect("hit");
        assert!(Arc::ptr_eq(&got, &stored), "must replay the stored allocation, not a copy");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let cache = ResultCache::new(2);
        cache.insert(1, payload("a"));
        cache.insert(2, payload("b"));
        cache.insert(3, payload("c"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(1).is_none(), "oldest entry evicted first");
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let cache = ResultCache::new(2);
        cache.insert(7, payload("old"));
        cache.insert(7, payload("new"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(7).unwrap().json().as_str(), Some("new"));
        assert_eq!(cache.evictions(), 0);
    }
}
