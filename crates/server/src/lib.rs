//! `salsa-serve` — an allocation service for the SALSA reproduction.
//!
//! A std-only multi-threaded TCP server speaking a newline-delimited
//! JSON protocol: clients submit a CDFG (inline text or a benchmark
//! name) plus resource constraints and search knobs; the server runs the
//! parallel portfolio allocator and returns the allocation report as
//! JSON. See [`protocol`] for the wire format.
//!
//! The service is built from small, independently tested parts:
//!
//! - [`queue`] — a bounded job queue with explicit backpressure: when
//!   full, requests are *rejected with a retry hint*, never buffered
//!   unboundedly;
//! - [`server`] — the accept loop, a fixed worker pool (with per-worker
//!   scratch buffers reused across jobs), per-job deadlines delivered as
//!   cooperative [`CancelToken`](salsa_alloc::CancelToken)s into the
//!   search, and graceful drain-then-exit shutdown;
//! - [`cache`] — a content-addressed result cache keyed by the FNV-1a
//!   128 fingerprint of `(canonical CDFG text, knobs)`;
//! - [`stats`] — job counters and p50/p95/p99 latency for the wire
//!   `stats` command;
//! - [`json`] / [`report`] — a std-only JSON model and the report
//!   serializer shared with the CLI's `--json` mode;
//! - [`exec`] — the request → schedule → allocate → report pipeline,
//!   also usable in-process (the load generator drives it directly);
//! - [`verifier`] — verification as a service: jobs submitted with
//!   `verify: sample|full` are certified on a dedicated worker lane
//!   (record the winning chain's move trace, replay it with cost
//!   cross-checks, verify symbolically) before the response — which
//!   gains a `certificate` section — is sent; verdicts are cached
//!   content-addressed beside the result cache, and the wire `trace`
//!   command serves the portable artifact for offline audit.
//!
//! # Why an exact-hit cache is sound
//!
//! Two requests whose canonical CDFG text and knobs agree are the *same
//! job*: canonicalization collapses spelling variants (the canonical
//! text is a fixpoint of `parse ∘ print`), and the portfolio search is
//! deterministic for identical inputs — identical seeds, restart
//! derivation and reduction order. The cache therefore replays the
//! stored response bytes, and a hit is byte-identical to what a fresh
//! run would have produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod backend;
pub mod cache;
pub mod exec;
pub mod similarity;
pub use salsa_wire::json;
pub mod protocol;
pub mod queue;
pub mod report;
pub mod server;
pub mod stats;
pub mod verifier;

pub use admission::{AdmissionArtifact, AdmissionCache, Derived};
pub use backend::{AllocBackend, LocalBackend};
pub use cache::ResultCache;
pub use exec::{resolve_graph, run_allocation, run_artifact, run_request, with_replay_env};
pub use json::{parse_json, Json, JsonError};
pub use protocol::{
    cache_key, knobs_from_json, knobs_to_json, ok_response_keyed, parse_command, AllocRequest,
    Command, ErrorKind, GraphSource, Knobs, ReallocRequest, ServeError,
};
pub use similarity::{build_warm_spec, SeedEntry, SeedIndex, Sketch};
pub use queue::{JobQueue, PushError};
pub use report::{canonicalize_report, report_json};
pub use server::{Server, ServerConfig};
pub use stats::{ServerStats, StatsSnapshot};
pub use verifier::{result_fingerprint, trace_id_hex, VerdictCache, VerifyJob};
