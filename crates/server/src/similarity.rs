//! Similarity-keyed warm-start seeding: a renumbering-invariant design
//! sketch, the bounded seed index of prior winners, and the label-based
//! delta matching that turns a near-hit into a [`WarmSpec`].
//!
//! The exact result cache only fires when canonical text and knobs agree
//! byte-for-byte. Incremental design flows rarely repeat exactly — they
//! resubmit a design with two operations swapped, one value renamed, a
//! coefficient changed. The [`SeedIndex`] keeps the winning
//! [`BindingParts`] of recent jobs keyed by a structural [`Sketch`];
//! when a new design lands within [`SEED_DISTANCE_PERMILLE`] of a prior
//! one, the server builds a [`WarmSpec`] from the prior winner (image +
//! label-remapped preferences + delta focus set) and the search starts
//! from the old answer instead of the constructive initial allocation.
//!
//! The sketch must be invariant under op/value *renumbering* — two
//! spellings of the same structure must land at distance 0 — so it is
//! built purely from multisets: the op-kind histogram and the
//! (producer kind, consumer kind) histogram of every def-use edge.
//! Neither consults an id or a label. `tests/warmstart.rs` pins the
//! invariance property.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use salsa_alloc::{BindingParts, WarmSpec};
use salsa_cdfg::{Cdfg, OpKind};

/// Accept a similarity seed when `distance * 1000 <= weight *
/// SEED_DISTANCE_PERMILLE` — i.e. the designs differ in at most 40% of
/// their sketch mass. Beyond that the prior winner's structure says
/// little about the new design and a cold start is the honest default.
pub const SEED_DISTANCE_PERMILLE: u64 = 400;

/// The six op kinds, in a fixed order for histogram indexing.
const KINDS: [OpKind; 6] =
    [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Lt, OpKind::Load, OpKind::Store];

fn kind_index(kind: OpKind) -> usize {
    KINDS.iter().position(|&k| k == kind).expect("kind in KINDS")
}

/// A renumbering-invariant structural summary of a design: the op-kind
/// multiset, the (producer kind, consumer kind) multiset over every
/// def-use edge, and the array count. Producer slot 0 means "external"
/// (an input, constant or state boundary feeds the read); slots 1..=6
/// are the producing op's kind.
///
/// Memory accesses participate through their own histogram slots and the
/// array count, so a memory design never sketches close to a scalar one
/// of the same arithmetic shape — their winners bind incompatible
/// resources (bank tables, memory ports) and must not seed each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    kinds: [u32; 6],
    edges: [u32; 7 * 6],
    arrays: u32,
}

impl Sketch {
    /// Builds the sketch from graph structure alone (no ids, no labels).
    pub fn of(graph: &Cdfg) -> Sketch {
        let mut kinds = [0u32; 6];
        let mut edges = [0u32; 7 * 6];
        for op in graph.ops() {
            let consumer = kind_index(op.kind());
            kinds[consumer] += 1;
            for operand in op.inputs() {
                let producer = match graph.value(operand).source().op() {
                    Some(p) => 1 + kind_index(graph.op(p).kind()),
                    None => 0,
                };
                edges[producer * 6 + consumer] += 1;
            }
        }
        Sketch { kinds, edges, arrays: graph.num_arrays() as u32 }
    }

    /// L1 distance between two sketches.
    pub fn distance(&self, other: &Sketch) -> u64 {
        let l1 = |a: &[u32], b: &[u32]| -> u64 {
            a.iter().zip(b).map(|(&x, &y)| u64::from(x.abs_diff(y))).sum()
        };
        l1(&self.kinds, &other.kinds)
            + l1(&self.edges, &other.edges)
            + u64::from(self.arrays.abs_diff(other.arrays))
    }

    /// Total sketch mass (ops + edges + arrays), the denominator of the
    /// acceptance threshold.
    pub fn weight(&self) -> u64 {
        self.kinds.iter().map(|&c| u64::from(c)).sum::<u64>()
            + self.edges.iter().map(|&c| u64::from(c)).sum::<u64>()
            + u64::from(self.arrays)
    }

    /// Whether `distance` is close enough to seed from, relative to this
    /// (the new design's) sketch weight.
    pub fn accepts(&self, distance: u64) -> bool {
        distance * 1000 <= self.weight() * SEED_DISTANCE_PERMILLE
    }
}

/// One remembered winner: the job's identity, its design, and the
/// allocation that won.
pub struct SeedEntry {
    /// The base job's result-cache key (the `source` provenance of any
    /// spec built from this entry, and the `reallocate` verb's handle).
    pub key: u128,
    /// The base design, canonicalized (label matching runs against it).
    pub graph: Cdfg,
    /// The winning allocation image.
    pub parts: BindingParts,
    /// The winning cost, for operator-facing logging.
    pub cost: u64,
    /// The base design's sketch.
    pub sketch: Sketch,
}

struct IndexInner {
    by_key: HashMap<u128, Arc<SeedEntry>>,
    order: VecDeque<u128>,
}

/// A bounded FIFO index of recent winners, queried two ways: exactly by
/// job key (the `reallocate` verb) and nearest-by-sketch (transparent
/// similarity seeding). Nearest-neighbour scan is linear — the index
/// holds at most a few dozen entries and a scan is nanoseconds next to
/// one allocation job.
pub struct SeedIndex {
    inner: Mutex<IndexInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SeedIndex {
    /// An index holding at most `capacity` winners (min 1).
    pub fn new(capacity: usize) -> Self {
        SeedIndex {
            inner: Mutex::new(IndexInner { by_key: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Remembers a winner, evicting the oldest entry at capacity.
    /// Re-inserting a key refreshes its entry without growing the index.
    pub fn insert(&self, entry: SeedEntry) {
        let mut inner = self.inner.lock().expect("seed index poisoned");
        let key = entry.key;
        if inner.by_key.insert(key, Arc::new(entry)).is_some() {
            return;
        }
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.by_key.remove(&old);
            }
        }
    }

    /// Exact lookup by job key (the `reallocate` base).
    pub fn get(&self, key: u128) -> Option<Arc<SeedEntry>> {
        let inner = self.inner.lock().expect("seed index poisoned");
        inner.by_key.get(&key).map(Arc::clone)
    }

    /// The entry nearest to `sketch` that passes the acceptance
    /// threshold, with its distance. Deterministic: lowest distance
    /// wins, ties break toward the *oldest* entry (insertion order), so
    /// the same index contents always seed the same way.
    pub fn nearest(&self, sketch: &Sketch) -> Option<(Arc<SeedEntry>, u64)> {
        let inner = self.inner.lock().expect("seed index poisoned");
        let mut best: Option<(Arc<SeedEntry>, u64)> = None;
        for key in &inner.order {
            let entry = &inner.by_key[key];
            let d = sketch.distance(&entry.sketch);
            if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                best = Some((Arc::clone(entry), d));
            }
        }
        match best {
            Some((entry, d)) if sketch.accepts(d) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry, d))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Entries currently remembered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("seed index poisoned").by_key.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of nearest() calls that produced a seed.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of nearest() calls that found nothing close.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Builds the [`WarmSpec`] seeding `new` from a prior winner: the base
/// image (attached when dimensions even permit it — [`Binding::from_parts`]
/// revalidates structurally at seed time), per-op/per-value preferences
/// remapped across the delta by **label**, and the focus set of
/// ops/values the delta actually touched.
///
/// Label matching is the bridge between the two numberings: canonical
/// text preserves user-visible names, so an op that survived the edit
/// keeps its label even when renumbered, while added/renamed entities
/// match nothing and land in the focus set.
///
/// [`Binding::from_parts`]: salsa_alloc::Binding::from_parts
pub fn build_warm_spec(base: &SeedEntry, new: &Cdfg, distance: u64) -> WarmSpec {
    let mut spec = WarmSpec::new();
    spec.source = base.key;
    spec.distance = distance;

    let base_ops: HashMap<&str, salsa_cdfg::OpId> =
        base.graph.ops().map(|o| (o.label(), o.id())).collect();
    let base_values: HashMap<&str, salsa_cdfg::ValueId> =
        base.graph.values().map(|v| (v.label(), v.id())).collect();

    for op in new.ops() {
        let matched = base_ops.get(op.label()).copied().filter(|&b| {
            let bop = base.graph.op(b);
            bop.kind() == op.kind()
                && bop.inputs().iter().map(|&v| base.graph.value(v).label()).collect::<Vec<_>>()
                    == op.inputs().iter().map(|&v| new.value(v).label()).collect::<Vec<_>>()
        });
        match matched {
            Some(b) => {
                if let Some(&fu) = base.parts.op_fu.get(b.index()) {
                    spec.op_fu.push((op.id().index() as u32, fu.index() as u32));
                }
            }
            None => spec.focus_ops.push(op.id().index() as u32),
        }
    }
    for value in new.values() {
        let matched = base_values.get(value.label()).copied().filter(|&b| {
            let source_label = |g: &Cdfg, v: &salsa_cdfg::Value| {
                v.source().op().map(|p| g.op(p).label().to_string())
            };
            source_label(&base.graph, base.graph.value(b)) == source_label(new, value)
        });
        match matched {
            Some(b) => {
                // Prefer the register the base winner stored this value
                // in first: the head of its first live chain slot.
                let reg = base.parts.chains.get(b.index()).and_then(|chains| {
                    chains.iter().flatten().next().and_then(|(_, regs)| regs.first())
                });
                if let Some(reg) = reg {
                    spec.value_reg.push((value.id().index() as u32, reg.index() as u32));
                }
            }
            None => spec.focus_values.push(value.id().index() as u32),
        }
    }

    // The image is only meaningful when the dimensions survived the
    // delta; `from_parts` still revalidates structurally at seed time.
    if base.graph.num_ops() == new.num_ops() && base.graph.num_values() == new.num_values() {
        spec.parts = Some(base.parts.clone());
    }

    // `new.ops()`/`new.values()` iterate in id order, so the tables the
    // core binary-searches are already sorted.
    debug_assert!(spec.focus_ops.is_sorted() && spec.focus_values.is_sorted());
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use salsa_cdfg::parse_cdfg;

    const BASE: &str = "cdfg t\ninput a\ninput b\nop x = add a b\nop y = mul x a\noutput y\n";

    fn entry(key: u128, text: &str) -> SeedEntry {
        let graph = parse_cdfg(text).unwrap();
        let sketch = Sketch::of(&graph);
        SeedEntry {
            key,
            graph,
            parts: BindingParts {
                op_fu: Vec::new(),
                op_swap: Vec::new(),
                chains: Vec::new(),
                use_chain: Vec::new(),
                passes: Vec::new(),
                array_banks: Vec::new(),
            },
            cost: 100,
            sketch,
        }
    }

    #[test]
    fn identical_structure_lands_at_distance_zero() {
        let a = parse_cdfg(BASE).unwrap();
        // Same structure, every label different: renaming must not move
        // the sketch at all.
        let b = parse_cdfg(
            "cdfg u\ninput p\ninput q\nop m = add p q\nop n = mul m p\noutput n\n",
        )
        .unwrap();
        assert_eq!(Sketch::of(&a).distance(&Sketch::of(&b)), 0);
    }

    #[test]
    fn a_small_edit_moves_the_sketch_a_little_a_big_one_a_lot() {
        // The acceptance threshold is *relative* to sketch weight, so the
        // base needs realistic size: on a 2-op design any edit is a large
        // fraction of the mass and a cold start is correct.
        let wide = "cdfg t\ninput a\ninput b\n\
                    op x1 = add a b\nop x2 = add x1 a\nop x3 = add x2 b\n\
                    op x4 = mul x3 x1\nop x5 = add x4 x2\nop x6 = add x5 x3\n\
                    op x7 = add x6 x1\noutput x7\n";
        let base = Sketch::of(&parse_cdfg(wide).unwrap());
        // One op-kind flip on the tail op.
        let tweaked = Sketch::of(&parse_cdfg(&wide.replace("x7 = add", "x7 = sub")).unwrap());
        let rebuilt = Sketch::of(
            &parse_cdfg("cdfg t\ninput a\nop x = lt a a\nop y = lt x x\nop z = lt y y\noutput z\n")
                .unwrap(),
        );
        let small = base.distance(&tweaked);
        let large = base.distance(&rebuilt);
        assert!(small > 0 && small < large, "small={small} large={large}");
        assert!(base.accepts(small));
        assert!(!base.accepts(large));
    }

    #[test]
    fn index_serves_nearest_with_deterministic_ties_and_fifo_eviction() {
        let index = SeedIndex::new(2);
        assert!(index.nearest(&Sketch::of(&parse_cdfg(BASE).unwrap())).is_none());
        index.insert(entry(1, BASE));
        // Same structure under different labels: distance 0, and the
        // *older* of two equal entries wins.
        index.insert(entry(
            2,
            "cdfg u\ninput p\ninput q\nop m = add p q\nop n = mul m p\noutput n\n",
        ));
        let probe = Sketch::of(&parse_cdfg(BASE).unwrap());
        let (hit, d) = index.nearest(&probe).expect("seed");
        assert_eq!((hit.key, d), (1, 0));
        assert!(index.get(1).is_some());

        // Capacity 2: a third insert evicts the oldest.
        index.insert(entry(3, BASE));
        assert_eq!(index.len(), 2);
        assert!(index.get(1).is_none());
        assert_eq!(index.nearest(&probe).unwrap().0.key, 2);
        assert_eq!((index.hits(), index.misses()), (2, 1));
    }

    #[test]
    fn warm_spec_matches_by_label_and_focuses_the_delta() {
        use salsa_alloc::FuId;
        let mut base = entry(9, BASE);
        base.parts.op_fu = vec![FuId::from_index(1), FuId::from_index(0)];
        // One op added, one untouched; `x` feeds the new op so its own
        // entry survives but `z`/`w` are new.
        let new = parse_cdfg(
            "cdfg t\ninput a\ninput b\nop x = add a b\nop y = mul x a\nop w = add y x\noutput w\n",
        )
        .unwrap();
        let spec = build_warm_spec(&base, &new, 5);
        assert_eq!(spec.source, 9);
        assert_eq!(spec.distance, 5);
        assert!(spec.parts.is_none(), "dimensions changed; no image");
        let x = new.ops().find(|o| o.label() == "x").unwrap().id().index() as u32;
        let w = new.ops().find(|o| o.label() == "w").unwrap().id().index() as u32;
        assert!(spec.op_fu.iter().any(|&(o, f)| o == x && f == 1), "{:?}", spec.op_fu);
        assert!(spec.focus_ops.contains(&w));
        assert!(!spec.focus_ops.contains(&x));
        let wv = new.values().find(|v| v.label() == "w").unwrap().id().index() as u32;
        assert!(spec.focus_values.contains(&wv));
    }
}
