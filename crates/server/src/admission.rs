//! The admission artifact cache: everything a job derives from its
//! design *before* search — parsed graph, canonical text, similarity
//! sketch, and per-knob-shape schedules with their compiled move plans —
//! computed once per design and shared by every subsequent job over it.
//!
//! Admission used to repeat this work per request: parse (or rebuild) the
//! graph, re-render the canonical text for the cache key, re-run
//! force-directed scheduling and recompile the [`MovePlan`] even when the
//! previous job had the identical design and knob shape. All of it is a
//! pure function of `(design, pipelined, steps, extra_regs)`, so a repeat
//! miss now skips straight to the portfolio search.
//!
//! Keyed by the FNV-1a 128 fingerprint of the *request spelling* (raw
//! CDFG text or benchmark name), so a repeat admission doesn't even
//! re-parse to discover it holds a known design. Distinct spellings of
//! one canonical design simply occupy two artifact slots — the artifact
//! is derived state, never an identity, so aliasing costs memory, not
//! correctness; the result cache still keys on canonical text.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use salsa_alloc::{AllocContext, MovePlan};
use salsa_cdfg::{fnv1a_128, Cdfg};
use salsa_sched::{asap, fds_schedule, FuLibrary, Schedule};

use crate::exec::resolve_graph;
use crate::protocol::{ErrorKind, GraphSource, Knobs, ServeError};
use crate::similarity::Sketch;

/// The knob shape a derived schedule/plan pair depends on: the library
/// choice, the *resolved* step count, and the register headroom (which
/// sets the pool the plan was stamped against).
type DerivedKey = (bool, usize, usize);

/// A schedule and its compiled move plan, derived once per
/// `(design, pipelined, steps, extra_regs)` shape.
pub struct Derived {
    /// The force-directed schedule.
    pub schedule: Schedule,
    /// The resolved step count (`knobs.steps` or the ASAP length).
    pub steps: usize,
    /// The compiled candidate tables, lent to every job over this shape.
    pub plan: Arc<MovePlan>,
}

/// Everything admission derives from one design.
pub struct AdmissionArtifact {
    /// The resolved (and, for benchmarks, canonicalized) graph.
    pub graph: Cdfg,
    /// `graph.canonical_text()`, rendered once — the result-cache key
    /// and the verifier both read it from here.
    pub canonical_text: String,
    /// The similarity sketch for warm-start seeding.
    pub sketch: Sketch,
    derived: Mutex<HashMap<DerivedKey, Arc<Derived>>>,
}

impl AdmissionArtifact {
    /// Builds the artifact for a resolved graph.
    pub fn new(graph: Cdfg) -> Self {
        let canonical_text = graph.canonical_text();
        let sketch = Sketch::of(&graph);
        AdmissionArtifact { graph, canonical_text, sketch, derived: Mutex::new(HashMap::new()) }
    }

    /// The schedule + compiled plan for this design under `knobs`,
    /// deriving and caching them on first use. Scheduling failures are
    /// not cached — a later request with feasible knobs must not be
    /// poisoned by an earlier infeasible one.
    pub fn derive(&self, knobs: &Knobs) -> Result<Arc<Derived>, ServeError> {
        let library =
            if knobs.pipelined { FuLibrary::pipelined() } else { FuLibrary::standard() };
        let steps = knobs.steps.unwrap_or_else(|| asap(&self.graph, &library).length);
        let key = (knobs.pipelined, steps, knobs.extra_regs);
        if let Some(hit) = self.derived.lock().expect("admission poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let schedule = fds_schedule(&self.graph, &library, steps)
            .map_err(|e| ServeError::new(ErrorKind::Schedule, e.to_string()))?;
        // Compiling the plan needs the full context (lifetimes + demand
        // checks); the throwaway borrow is the point — the Arc'd plan
        // survives it and every later job skips the compile.
        let datapath =
            salsa_audit::build_datapath(&self.graph, &schedule, &library, knobs.extra_regs);
        let plan = AllocContext::new(&self.graph, &schedule, &library, datapath)
            .map(|ctx| Arc::clone(&ctx.plan))
            .map_err(|e| ServeError::new(ErrorKind::Alloc, e.to_string()))?;
        let derived = Arc::new(Derived { schedule, steps, plan });
        self.derived
            .lock()
            .expect("admission poisoned")
            .entry(key)
            .or_insert_with(|| Arc::clone(&derived));
        Ok(derived)
    }
}

struct CacheInner {
    map: HashMap<u128, Arc<AdmissionArtifact>>,
    order: VecDeque<u128>,
}

/// Bounded FIFO cache of admission artifacts, keyed by request spelling.
pub struct AdmissionCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AdmissionCache {
    /// A cache holding at most `capacity` designs (min 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionCache {
            inner: Mutex::new(CacheInner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn source_key(source: &GraphSource) -> u128 {
        match source {
            GraphSource::Bench(name) => {
                fnv1a_128(format!("bench\x00{}", crate::protocol::canonical_bench_name(name)).as_bytes())
            }
            GraphSource::Text(text) => fnv1a_128(text.as_bytes()),
        }
    }

    /// Resolves a request source to its admission artifact, parsing and
    /// sketching only on the first sighting of this spelling.
    pub fn resolve(&self, source: &GraphSource) -> Result<Arc<AdmissionArtifact>, ServeError> {
        let key = Self::source_key(source);
        if let Some(hit) = self.inner.lock().expect("admission poisoned").map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(AdmissionArtifact::new(resolve_graph(source)?));
        let mut inner = self.inner.lock().expect("admission poisoned");
        if inner.map.insert(key, Arc::clone(&artifact)).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
        Ok(artifact)
    }

    /// Designs currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("admission poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_admissions_share_one_artifact_and_one_derivation() {
        let cache = AdmissionCache::new(4);
        let source = GraphSource::Bench("ewf".into());
        let a = cache.resolve(&source).unwrap();
        let b = cache.resolve(&source).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat admission must reuse the artifact");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Aliases land on the same slot as their canonical name.
        let aliased = cache.resolve(&GraphSource::Bench("hal".into())).unwrap();
        let canonical = cache.resolve(&GraphSource::Bench("diffeq".into())).unwrap();
        assert!(Arc::ptr_eq(&aliased, &canonical));

        // Derivations dedupe per knob shape and share the compiled plan.
        let knobs = Knobs::default();
        let d1 = a.derive(&knobs).unwrap();
        let d2 = b.derive(&knobs).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2), "same knob shape must reuse the derivation");
        let other = a.derive(&Knobs { extra_regs: 1, ..Knobs::default() }).unwrap();
        assert!(!Arc::ptr_eq(&d1.plan, &other.plan), "extra_regs changes the pool and the plan");
        assert_eq!(d1.steps, other.steps);
    }

    #[test]
    fn infeasible_steps_fail_without_poisoning_the_artifact() {
        let cache = AdmissionCache::new(4);
        let artifact = cache.resolve(&GraphSource::Bench("ewf".into())).unwrap();
        let bad = Knobs { steps: Some(1), ..Knobs::default() };
        let err = artifact.derive(&bad).err().expect("1 step is infeasible");
        assert_eq!(err.kind, ErrorKind::Schedule);
        assert!(artifact.derive(&Knobs::default()).is_ok());
    }

    #[test]
    fn text_spellings_key_on_raw_bytes() {
        let cache = AdmissionCache::new(4);
        let text = "cdfg t\ninput a\nop x = add a a\noutput x\n";
        let a = cache.resolve(&GraphSource::Text(text.into())).unwrap();
        let b = cache.resolve(&GraphSource::Text(text.into())).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.canonical_text, a.graph.canonical_text());
    }
}
