//! The verifier lane: certification of completed allocations on a
//! dedicated worker pool, and the content-addressed verdict cache.
//!
//! Jobs submitted with `verify: sample|full` do not reply from the
//! allocation worker. Instead the completed report is handed (with its
//! reply handle) to this lane, which re-derives the winning chain with
//! trace recording on, replays the trace move-by-move with cost
//! cross-checks, runs the full symbolic verification, and only then
//! replies — with a `certificate` section appended to the report. The
//! lane has its own small worker pool so symbolic replay never blocks
//! allocation throughput, and its own latency reservoir so operators can
//! watch the two lanes separately.
//!
//! Verdicts are cached content-addressed by **result fingerprint** —
//! FNV-1a 128 over `(canonical design text, canonical report, verify
//! mode)` — beside the existing result cache. Two jobs whose knobs
//! differ only in result-invariant ways (thread counts, the move-plan
//! A/B toggle) produce the same canonical report and therefore share one
//! verdict: the second certification is a cache hit, recorded in the
//! certificate's `cache` field. Each cached entry also carries the
//! portable [`TraceArtifact`] envelope, served by the wire `trace`
//! command for offline audit (`salsa audit`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use salsa_audit::{certify, Certification, TraceArtifact, VerifyMode};
use salsa_cdfg::{fnv1a_128, Cdfg};
use salsa_wire::net::ReplyHandle;

use crate::admission::AdmissionArtifact;
use crate::exec::with_replay_env;
use crate::json::Json;
use crate::protocol::{knobs_to_json, ErrorKind, Knobs, ServeError};
use crate::report::canonicalize_report;

/// A completed allocation awaiting certification. Carries everything the
/// lane needs to re-derive the result — and the reply handle, because
/// the response is not sent until the certificate exists.
pub struct VerifyJob {
    /// The job's admission artifact: the resolved design plus its
    /// already-rendered canonical text, so the lane never re-parses or
    /// re-renders what admission already has.
    pub artifact: Arc<AdmissionArtifact>,
    /// The job's knobs (including the verify mode).
    pub knobs: Knobs,
    /// The job's result-cache key; the certified response is cached
    /// under it.
    pub key: u128,
    /// When the request was admitted (end-to-end latency basis).
    pub accepted_at: Instant,
    /// Completes the originating request.
    pub reply: ReplyHandle,
    /// The allocation report the certificate is appended to.
    pub report: Json,
}

/// The content address of a verdict: the canonical design text, the
/// canonical (timing-zeroed) compact report, and the verify mode. Sound
/// for the same reason the result cache is — both inputs are
/// deterministic in `(design, knobs)` — but deliberately *coarser* than
/// the result-cache key: knobs that never change the result (thread
/// counts, the plan toggle) collapse onto one fingerprint.
pub fn result_fingerprint(canonical_text: &str, canonical_report: &str, mode: VerifyMode) -> u128 {
    let mut keyed =
        String::with_capacity(canonical_text.len() + canonical_report.len() + 16);
    keyed.push_str(canonical_text);
    keyed.push('\x00');
    keyed.push_str(canonical_report);
    keyed.push('\x00');
    keyed.push_str(mode.as_str());
    fnv1a_128(keyed.as_bytes())
}

/// The wire spelling of a trace id: the trace fingerprint as 32 hex
/// digits.
pub fn trace_id_hex(fingerprint: u128) -> String {
    format!("{fingerprint:032x}")
}

/// Parses the wire spelling back to a fingerprint.
pub fn parse_trace_id(id: &str) -> Option<u128> {
    (!id.is_empty() && id.len() <= 32).then(|| u128::from_str_radix(id, 16).ok())?
}

/// One cached certification: the certificate section (as first
/// computed, provenance `miss`) and the trace artifact behind it.
pub struct CertEntry {
    /// The trace fingerprint, for the secondary `trace_id` index.
    pub trace_id: u128,
    /// The `certificate` JSON section (provenance field patched per
    /// reply).
    pub certificate: Json,
    /// The portable [`TraceArtifact`] envelope, served by `trace`.
    pub artifact: Json,
}

struct CacheInner {
    by_result: HashMap<u128, Arc<CertEntry>>,
    by_trace: HashMap<u128, Arc<CertEntry>>,
    order: VecDeque<u128>,
}

/// Bounded, thread-safe verdict cache with FIFO eviction, keyed by
/// [`result_fingerprint`] with a secondary index by trace id.
pub struct VerdictCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerdictCache {
    /// A cache holding at most `capacity` verdicts (min 1).
    pub fn new(capacity: usize) -> Self {
        VerdictCache {
            inner: Mutex::new(CacheInner {
                by_result: HashMap::new(),
                by_trace: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a verdict by result fingerprint, counting hit/miss.
    pub fn get(&self, fingerprint: u128) -> Option<Arc<CertEntry>> {
        let inner = self.inner.lock().expect("verdict cache poisoned");
        match inner.by_result.get(&fingerprint) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a verdict by trace id (the `trace` command's path; not
    /// counted as a hit or miss).
    pub fn get_by_trace(&self, trace_id: u128) -> Option<Arc<CertEntry>> {
        let inner = self.inner.lock().expect("verdict cache poisoned");
        inner.by_trace.get(&trace_id).map(Arc::clone)
    }

    /// Stores `entry` under `fingerprint`, evicting FIFO at capacity.
    pub fn insert(&self, fingerprint: u128, entry: Arc<CertEntry>) {
        let mut inner = self.inner.lock().expect("verdict cache poisoned");
        let trace_id = entry.trace_id;
        if let Some(old) = inner.by_result.insert(fingerprint, Arc::clone(&entry)) {
            inner.by_trace.remove(&old.trace_id);
            inner.by_trace.insert(trace_id, entry);
            return; // fingerprint already tracked in `order`
        }
        inner.by_trace.insert(trace_id, entry);
        inner.order.push_back(fingerprint);
        while inner.order.len() > self.capacity {
            if let Some(old_key) = inner.order.pop_front() {
                if let Some(old) = inner.by_result.remove(&old_key) {
                    inner.by_trace.remove(&old.trace_id);
                }
            }
        }
    }

    /// Verdicts currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("verdict cache poisoned").by_result.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Renders the `certificate` response section.
pub fn certificate_json(
    cert: &Certification,
    mode: VerifyMode,
    verify_ms: f64,
    cache: &str,
) -> Json {
    Json::obj(vec![
        ("verdict", Json::Str(cert.verdict.as_str().into())),
        ("mode", Json::Str(mode.as_str().into())),
        ("verify_ms", Json::Float(verify_ms)),
        ("trace_id", Json::Str(trace_id_hex(cert.trace.fingerprint()))),
        ("cache", Json::Str(cache.into())),
        ("commits", Json::Int(cert.commits as i64)),
    ])
}

/// Overwrites `certificate`'s `cache` provenance field in place.
pub fn set_cache_provenance(certificate: &mut Json, provenance: &str) {
    if let Json::Obj(pairs) = certificate {
        for (key, value) in pairs.iter_mut() {
            if key == "cache" {
                *value = Json::Str(provenance.into());
            }
        }
    }
}

/// Runs the certification pipeline for one completed job: rebuild the
/// allocation environment, record the winning slot's trace, replay it at
/// the requested depth, verify symbolically, and package the portable
/// artifact. Pure in `(graph, knobs, report)`.
///
/// # Errors
///
/// Returns a [`ServeError`] of kind [`ErrorKind::Audit`] if the report
/// is missing its cost or winner slot, or if any link of the audit chain
/// (re-run, replay, bit-for-bit comparison) breaks. A *refuted* symbolic
/// verdict is not an error — it is carried in the certificate.
pub fn certify_job(
    graph: &Cdfg,
    knobs: &Knobs,
    report: &Json,
) -> Result<(Certification, TraceArtifact), ServeError> {
    let cost = report
        .get("cost")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::new(ErrorKind::Audit, "report has no 'cost' to certify"))?;
    let slot = report
        .get("portfolio")
        .and_then(|p| p.get("winner_slot"))
        .and_then(Json::as_u64)
        .ok_or_else(|| {
            ServeError::new(ErrorKind::Audit, "report has no 'portfolio.winner_slot' to replay")
        })? as usize;

    let cert = with_replay_env(graph, knobs, |ctx, config| {
        certify(ctx, config, knobs.seed, slot, cost, knobs.verify)
    })?
    .map_err(|e| ServeError::new(ErrorKind::Audit, e.to_string()))?;

    let mut canonical = report.clone();
    canonicalize_report(&mut canonical);
    let artifact = TraceArtifact {
        design: graph.canonical_text(),
        knobs: knobs_to_json(knobs),
        slot,
        trace: cert.trace.encode(),
        cost,
        report: canonical.to_string_compact(),
    };
    Ok((cert, artifact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{resolve_graph, run_allocation};
    use crate::protocol::GraphSource;

    #[test]
    fn trace_ids_roundtrip_and_reject_junk() {
        for fp in [0u128, 1, u128::MAX, 0xdead_beef] {
            assert_eq!(parse_trace_id(&trace_id_hex(fp)), Some(fp));
        }
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("zz"), None);
        assert_eq!(parse_trace_id(&"f".repeat(33)), None);
    }

    #[test]
    fn verdict_cache_serves_both_indexes_and_evicts_fifo() {
        let cache = VerdictCache::new(2);
        let entry = |trace_id: u128| {
            Arc::new(CertEntry {
                trace_id,
                certificate: Json::obj(vec![("cache", Json::Str("miss".into()))]),
                artifact: Json::Null,
            })
        };
        assert!(cache.get(1).is_none());
        cache.insert(1, entry(11));
        cache.insert(2, entry(22));
        assert_eq!(cache.get(1).unwrap().trace_id, 11);
        assert_eq!(cache.get_by_trace(22).unwrap().trace_id, 22);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Eviction drops the oldest entry from both indexes.
        cache.insert(3, entry(33));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none());
        assert!(cache.get_by_trace(11).is_none());
        assert!(cache.get_by_trace(33).is_some());

        // Provenance patching rewrites only the cache field.
        let mut cert = Json::obj(vec![
            ("verdict", Json::Str("certified".into())),
            ("cache", Json::Str("miss".into())),
        ]);
        set_cache_provenance(&mut cert, "hit");
        assert_eq!(cert.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(cert.get("verdict").and_then(Json::as_str), Some("certified"));
    }

    #[test]
    fn certify_job_certifies_a_real_report_and_result_invariant_knobs_share_a_fingerprint() {
        let graph = resolve_graph(&GraphSource::Bench("paper_example".into())).unwrap();
        let knobs = Knobs { restarts: 2, verify: VerifyMode::Full, ..Knobs::default() };
        let report = run_allocation(&graph, &knobs, None).unwrap();
        let (cert, artifact) = certify_job(&graph, &knobs, &report).unwrap();
        assert!(cert.verdict.is_certified(), "{}", cert.verdict);
        assert!(cert.commits > 0);
        assert_eq!(artifact.cost, report.get("cost").and_then(Json::as_u64).unwrap());
        assert!(artifact.decode_trace().is_ok());

        // The artifact's embedded report is the canonical form of the
        // live one.
        let mut canonical = report.clone();
        canonicalize_report(&mut canonical);
        assert_eq!(artifact.report, canonical.to_string_compact());

        // A knob that never changes the result (the plan A/B toggle)
        // lands on the same verdict fingerprint; the seed does not.
        let canon = canonical.to_string_compact();
        let text = graph.canonical_text();
        let fp = result_fingerprint(&text, &canon, VerifyMode::Full);
        let toggled = Knobs { plan: false, ..knobs.clone() };
        let mut other = run_allocation(&graph, &toggled, None).unwrap();
        canonicalize_report(&mut other);
        assert_eq!(
            result_fingerprint(&text, &other.to_string_compact(), VerifyMode::Full),
            fp
        );
        assert_ne!(result_fingerprint(&text, &canon, VerifyMode::Sample), fp);

        // A tampered report cost is refused.
        let mut lied = report.clone();
        if let Json::Obj(pairs) = &mut lied {
            for (key, value) in pairs.iter_mut() {
                if key == "cost" {
                    *value = Json::Int(Json::as_i64(value).unwrap() + 1);
                }
            }
        }
        let err = certify_job(&graph, &knobs, &lied).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Audit);
    }
}
