//! The allocation backend seam: how the service turns a resolved job
//! into a report.
//!
//! The queue, cache, stats and connection layers are agnostic to *where*
//! chains run — in-process threads (the default [`LocalBackend`]) or a
//! coordinator fanning shards out to worker processes (`salsa-cluster`'s
//! backend, injected from the binary to keep the dependency graph
//! acyclic: `wire ← server ← cluster ← main`). Whatever the backend, the
//! report contract is identical — the portfolio reduction is
//! deterministic in `(cost, seed)`, so the cache stays sound.

use salsa_alloc::CancelToken;
use salsa_cdfg::Cdfg;

use crate::exec::run_allocation;
use crate::json::Json;
use crate::protocol::{Knobs, ServeError};

/// Executes one resolved allocation job and returns its report object.
pub trait AllocBackend: Send + Sync {
    /// A short label for the `stats` response (`"local"`, `"cluster"`).
    fn name(&self) -> &str;

    /// Runs the job, polling `cancel` cooperatively. Must produce the
    /// same report a local run would for the same `(graph, knobs)` —
    /// the cache replays responses across backends.
    fn allocate(
        &self,
        graph: &Cdfg,
        knobs: &Knobs,
        cancel: Option<CancelToken>,
    ) -> Result<Json, ServeError>;
}

/// The default backend: chains run on this process's portfolio engine.
#[derive(Debug, Default)]
pub struct LocalBackend;

impl AllocBackend for LocalBackend {
    fn name(&self) -> &str {
        "local"
    }

    fn allocate(
        &self,
        graph: &Cdfg,
        knobs: &Knobs,
        cancel: Option<CancelToken>,
    ) -> Result<Json, ServeError> {
        run_allocation(graph, knobs, cancel)
    }
}
