//! The allocation backend seam: how the service turns a resolved job
//! into a report.
//!
//! The queue, cache, stats and connection layers are agnostic to *where*
//! chains run — in-process threads (the default [`LocalBackend`]) or a
//! coordinator fanning shards out to worker processes (`salsa-cluster`'s
//! backend, injected from the binary to keep the dependency graph
//! acyclic: `wire ← server ← cluster ← main`). Whatever the backend, the
//! report contract is identical — the portfolio reduction is
//! deterministic in `(cost, seed)`, so the cache stays sound.
//!
//! Backends receive the job's [`AdmissionArtifact`] rather than a bare
//! graph: local runs reuse its cached schedule and compiled move plan,
//! and backends that can cheaply extract the winner's binding image
//! return it so the server can bank a warm-start seed. Returning `None`
//! is always allowed — seeding is an optimization, never an obligation.

use salsa_alloc::{BindingParts, CancelToken};

use crate::admission::AdmissionArtifact;
use crate::exec::run_artifact;
use crate::json::Json;
use crate::protocol::{Knobs, ServeError};

/// Executes one resolved allocation job and returns its report object,
/// plus (optionally) the winning binding's context-free image for the
/// seed index.
pub trait AllocBackend: Send + Sync {
    /// A short label for the `stats` response (`"local"`, `"cluster"`).
    fn name(&self) -> &str;

    /// Runs the job, polling `cancel` cooperatively. Must produce the
    /// same report a local run would for the same `(graph, knobs)` —
    /// the cache replays responses across backends.
    fn allocate(
        &self,
        artifact: &AdmissionArtifact,
        knobs: &Knobs,
        cancel: Option<CancelToken>,
    ) -> Result<(Json, Option<BindingParts>), ServeError>;
}

/// The default backend: chains run on this process's portfolio engine.
#[derive(Debug, Default)]
pub struct LocalBackend;

impl AllocBackend for LocalBackend {
    fn name(&self) -> &str {
        "local"
    }

    fn allocate(
        &self,
        artifact: &AdmissionArtifact,
        knobs: &Knobs,
        cancel: Option<CancelToken>,
    ) -> Result<(Json, Option<BindingParts>), ServeError> {
        run_artifact(artifact, knobs, cancel).map(|(report, winner)| (report, Some(winner)))
    }
}
