//! The TCP service: accept loop, connection handling, the fixed worker
//! pool, and graceful drain-then-exit shutdown.
//!
//! Thread layout:
//!
//! ```text
//! listener thread ── accepts, spawns one thread per connection
//! connection threads ── parse requests; cache hits answered inline,
//!                       misses pushed to the bounded queue (or rejected
//!                       with backpressure), then block on the job reply
//! worker pool (fixed) ── pop → schedule → portfolio search under the
//!                        job's deadline token → serialize → cache →
//!                        reply; per-worker scratch buffer reused across
//!                        jobs
//! ```
//!
//! Shutdown (via [`Server::begin_shutdown`] or the wire `shutdown`
//! command) closes the queue: no new admissions, queued jobs still run
//! to completion, workers exit when the queue drains, connection threads
//! notice the flag within one read-timeout tick, and
//! [`Server::join`] collects everything.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use salsa_alloc::CancelToken;
use salsa_cdfg::Cdfg;

use crate::backend::{AllocBackend, LocalBackend};
use crate::cache::ResultCache;
use crate::exec::resolve_graph;
use crate::json::{parse_json, Json};
use crate::protocol::{
    cache_key, error_response, ok_response, parse_command, rejected_response, Command, ErrorKind,
    Knobs, ServeError,
};
use crate::queue::{JobQueue, PushError};
use crate::stats::ServerStats;

/// How often blocked connection reads wake to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// Accept-loop poll period while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// How long [`Server::join`] waits for open connections to finish.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Service tuning. All fields have serviceable defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed allocation worker pool size (min 1).
    pub workers: usize,
    /// Bounded job-queue capacity; pushes beyond it are rejected with
    /// backpressure (min 1).
    pub queue_capacity: usize,
    /// Result-cache capacity, in responses (min 1).
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not carry their own
    /// `timeout_ms` (`None` = unbounded).
    pub default_timeout_ms: Option<u64>,
    /// The `retry_after_ms` hint sent with backpressure rejections.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            default_timeout_ms: None,
            retry_after_ms: 200,
        }
    }
}

/// One queued allocation job. The graph is resolved (and the cache
/// consulted) in the connection thread, so workers only ever see
/// well-formed work.
struct Job {
    graph: Cdfg,
    knobs: Knobs,
    key: u128,
    deadline: Option<Instant>,
    accepted_at: Instant,
    reply: mpsc::Sender<Arc<String>>,
}

struct Shared {
    queue: JobQueue<Job>,
    cache: ResultCache,
    stats: ServerStats,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    config: ServerConfig,
    backend: Arc<dyn AllocBackend>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running allocation service. Bind with [`Server::bind`], stop with
/// [`Server::shutdown`] (or the wire `shutdown` command followed by
/// [`Server::join`]).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// starts the listener and worker threads, running jobs on the
    /// in-process [`LocalBackend`].
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        Server::bind_with_backend(addr, config, Arc::new(LocalBackend))
    }

    /// Like [`bind`](Server::bind) but with an explicit allocation
    /// backend (e.g. the cluster coordinator's).
    pub fn bind_with_backend(
        addr: &str,
        config: ServerConfig,
        backend: Arc<dyn AllocBackend>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            config: config.clone(),
            backend,
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("salsa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let listener_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("salsa-serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn listener")
        };

        Ok(Server { local_addr, shared, listener: Some(listener_handle), workers })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts the graceful drain: stop admitting, finish what is queued.
    /// Idempotent; does not block.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been initiated (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Waits for the service to exit: the accept loop, every worker, and
    /// (bounded by a grace period) open connections. Blocks until the
    /// wire `shutdown` command or [`begin_shutdown`](Server::begin_shutdown)
    /// triggers the drain.
    pub fn join(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let deadline = Instant::now() + DRAIN_GRACE;
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Convenience: [`begin_shutdown`](Server::begin_shutdown) then
    /// [`join`](Server::join).
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("salsa-serve-conn".into())
                    .spawn(move || {
                        connection_loop(stream, &conn_shared);
                        conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                let request = line.trim();
                let mut closing = false;
                if !request.is_empty() {
                    let (response, end) = handle_line(request, shared);
                    closing = end;
                    let wrote = writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush());
                    if wrote.is_err() {
                        break;
                    }
                }
                line.clear();
                if closing {
                    break;
                }
            }
            // Timeout tick: partial data (if any) stays buffered in
            // `line`; just poll the shutdown flag and keep reading.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                if shared.shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Handles one request line; returns the response line (no trailing
/// newline) and whether the connection should close afterwards.
fn handle_line(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    let request = match parse_json(line) {
        Ok(json) => json,
        Err(e) => {
            let err = ServeError::new(
                ErrorKind::BadRequest,
                format!("invalid JSON at byte {}: {}", e.offset, e.message),
            );
            return (error_response(&err).to_string_compact(), false);
        }
    };
    let command = match parse_command(&request) {
        Ok(command) => command,
        Err(e) => return (error_response(&e).to_string_compact(), false),
    };
    match command {
        Command::Ping => (
            Json::obj(vec![("status", Json::Str("ok".into())), ("pong", Json::Bool(true))])
                .to_string_compact(),
            false,
        ),
        Command::Stats => (stats_response(shared).to_string_compact(), false),
        Command::Shutdown => {
            shared.begin_shutdown();
            (
                Json::obj(vec![
                    ("status", Json::Str("ok".into())),
                    ("shutting_down", Json::Bool(true)),
                ])
                .to_string_compact(),
                true,
            )
        }
        Command::Allocate(request) => {
            let response = handle_allocate(shared, request.source, request.knobs, request.timeout_ms);
            (response, false)
        }
    }
}

fn handle_allocate(
    shared: &Arc<Shared>,
    source: crate::protocol::GraphSource,
    knobs: Knobs,
    timeout_ms: Option<u64>,
) -> String {
    if shared.shutting_down() {
        let err = ServeError::new(ErrorKind::ShuttingDown, "server is draining; not accepting jobs");
        return error_response(&err).to_string_compact();
    }
    let graph = match resolve_graph(&source) {
        Ok(graph) => graph,
        Err(e) => return error_response(&e).to_string_compact(),
    };
    let key = cache_key(&graph.canonical_text(), &knobs);
    if let Some(bytes) = shared.cache.get(key) {
        // Exact hit: replay the stored response bytes verbatim.
        return (*bytes).clone();
    }

    let deadline = timeout_ms
        .or(shared.config.default_timeout_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let (reply, receiver) = mpsc::channel();
    let job = Job { graph, knobs, key, deadline, accepted_at: Instant::now(), reply };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.stats.record_accepted();
            match receiver.recv() {
                Ok(bytes) => (*bytes).clone(),
                Err(_) => {
                    let err = ServeError::new(ErrorKind::Alloc, "worker dropped the job");
                    error_response(&err).to_string_compact()
                }
            }
        }
        Err(PushError::Full(_)) => {
            shared.stats.record_rejected();
            rejected_response(shared.config.retry_after_ms).to_string_compact()
        }
        Err(PushError::Closed(_)) => {
            let err =
                ServeError::new(ErrorKind::ShuttingDown, "server is draining; not accepting jobs");
            error_response(&err).to_string_compact()
        }
    }
}

fn stats_response(shared: &Arc<Shared>) -> Json {
    let snap = shared.stats.snapshot();
    let cache = &shared.cache;
    Json::obj(vec![
        ("status", Json::Str("ok".into())),
        (
            "stats",
            Json::obj(vec![
                ("accepted", Json::Int(snap.accepted as i64)),
                ("rejected", Json::Int(snap.rejected as i64)),
                ("completed", Json::Int(snap.completed as i64)),
                ("failed", Json::Int(snap.failed as i64)),
                ("timeouts", Json::Int(snap.timeouts as i64)),
                (
                    "cache",
                    Json::obj(vec![
                        ("hits", Json::Int(cache.hits() as i64)),
                        ("misses", Json::Int(cache.misses() as i64)),
                        ("evictions", Json::Int(cache.evictions() as i64)),
                        ("entries", Json::Int(cache.len() as i64)),
                        ("hit_rate", Json::Float(cache.hit_rate())),
                    ]),
                ),
                (
                    "queue",
                    Json::obj(vec![
                        ("depth", Json::Int(shared.queue.depth() as i64)),
                        ("capacity", Json::Int(shared.queue.capacity() as i64)),
                    ]),
                ),
                (
                    "latency_ms",
                    Json::obj(vec![
                        ("p50", Json::Float(snap.p50_ms)),
                        ("p95", Json::Float(snap.p95_ms)),
                        ("p99", Json::Float(snap.p99_ms)),
                        ("samples", Json::Int(snap.samples as i64)),
                    ]),
                ),
                ("workers", Json::Int(shared.config.workers as i64)),
                ("backend", Json::Str(shared.backend.name().to_string())),
            ]),
        ),
    ])
}

fn worker_loop(shared: &Arc<Shared>) {
    // Per-worker scratch buffer, reused across jobs: responses are built
    // here and only the final bytes are copied into the shared Arc.
    let mut scratch = String::new();
    while let Some(job) = shared.queue.pop() {
        process_job(shared, job, &mut scratch);
    }
}

fn process_job(shared: &Arc<Shared>, job: Job, scratch: &mut String) {
    let cancel = job.deadline.map(CancelToken::with_deadline);
    let outcome = shared.backend.allocate(&job.graph, &job.knobs, cancel);
    let latency = job.accepted_at.elapsed();
    let bytes = match outcome {
        Ok(report) => {
            scratch.clear();
            scratch.push_str(&ok_response(report).to_string_compact());
            let bytes = Arc::new(scratch.clone());
            shared.cache.insert(job.key, Arc::clone(&bytes));
            shared.stats.record_completed(latency);
            bytes
        }
        Err(err) => {
            if err.kind == ErrorKind::Timeout {
                shared.stats.record_timeout(latency);
            } else {
                shared.stats.record_failed(latency);
            }
            Arc::new(error_response(&err).to_string_compact())
        }
    };
    // The client may have disconnected while waiting; nothing to do then.
    let _ = job.reply.send(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(stream: &mut TcpStream, request: &str) -> Json {
        let mut line = request.to_string();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse_json(response.trim()).unwrap_or_else(|e| panic!("{response:?}: {e:?}"))
    }

    #[test]
    fn ping_stats_and_shutdown_over_the_wire() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();

        let pong = roundtrip(&mut stream, r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

        let stats = roundtrip(&mut stream, r#"{"cmd":"stats"}"#);
        let body = stats.get("stats").expect("stats body");
        assert_eq!(body.get("accepted").and_then(Json::as_u64), Some(0));
        assert_eq!(
            body.get("queue").and_then(|q| q.get("capacity")).and_then(Json::as_u64),
            Some(ServerConfig::default().queue_capacity as u64)
        );

        let bye = roundtrip(&mut stream, r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("shutting_down").and_then(Json::as_bool), Some(true));
        server.join();
    }

    #[test]
    fn malformed_json_gets_a_structured_error_not_a_hangup() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let err = roundtrip(&mut stream, "{not json");
        assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad-request"));
        // The connection survives the bad line.
        let pong = roundtrip(&mut stream, r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
        server.shutdown();
    }
}
