//! The TCP service: a poll-based I/O core, the fixed worker pool, and
//! graceful drain-then-exit shutdown.
//!
//! Thread layout:
//!
//! ```text
//! net-io thread ── one nonblocking readiness loop over every
//!                  connection (accept, classify JSON-line vs binary
//!                  frames, parse, dispatch); cache hits, stats, ping
//!                  and admission-control decisions answered inline,
//!                  misses pushed to the bounded queue (or rejected
//!                  with backpressure) carrying the reply handle
//! worker pool (fixed) ── pop → schedule → portfolio search under the
//!                        job's deadline token → build the response
//!                        payload → cache → complete the reply handle
//! ```
//!
//! The I/O loop lives in [`salsa_wire::net`]; this module supplies the
//! dispatch handler. Responses are [`Payload`]s — one JSON document with
//! lazily cached text and binary renderings — so the byte-replay cache
//! serves line-mode and binary-mode clients identical bytes from one
//! entry, and pipelined clients get per-request correlation on the
//! binary protocol (line mode answers strictly in request order).
//!
//! Shutdown (via [`Server::begin_shutdown`] or the wire `shutdown`
//! command) closes the queue: no new admissions, queued jobs still run
//! to completion, workers exit when the queue drains, and the I/O loop
//! exits once every outstanding reply is flushed; [`Server::join`]
//! collects everything.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use salsa_alloc::CancelToken;
use salsa_audit::VerifyMode;
use salsa_wire::frame::Payload;
use salsa_wire::net::{Handler, Incoming, NetConfig, NetMetrics, NetServer, ReplyHandle};

use crate::admission::AdmissionCache;
use crate::backend::{AllocBackend, LocalBackend};
use crate::cache::ResultCache;
use crate::json::Json;
use crate::protocol::{
    cache_key, error_response, ok_response_keyed, parse_command, rejected_response, Command,
    ErrorKind, Knobs, ServeError,
};
use crate::queue::{JobQueue, PushError};
use crate::similarity::{build_warm_spec, SeedEntry, SeedIndex};
use crate::stats::ServerStats;
use crate::verifier::{
    certificate_json, certify_job, parse_trace_id, result_fingerprint, set_cache_provenance,
    CertEntry, VerdictCache, VerifyJob,
};

/// Service tuning. All fields have serviceable defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed allocation worker pool size (min 1).
    pub workers: usize,
    /// Bounded job-queue capacity; pushes beyond it are rejected with
    /// backpressure (min 1).
    pub queue_capacity: usize,
    /// Result-cache capacity, in responses (min 1).
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not carry their own
    /// `timeout_ms` (`None` = unbounded).
    pub default_timeout_ms: Option<u64>,
    /// The `retry_after_ms` hint sent with backpressure rejections.
    pub retry_after_ms: u64,
    /// Max pipelined requests in flight per connection; beyond it the
    /// wire core answers with the same backpressure rejection (0 =
    /// unlimited).
    pub max_in_flight: usize,
    /// Evict connections idle (no traffic, no pending work) for this
    /// long (`None` = never).
    pub idle_timeout_ms: Option<u64>,
    /// Verifier-lane worker pool size (min 1). The lane only runs for
    /// jobs submitted with `verify: sample|full`; keeping it small and
    /// separate means symbolic replay never occupies an allocation
    /// worker.
    pub verify_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            default_timeout_ms: None,
            retry_after_ms: 200,
            max_in_flight: 64,
            idle_timeout_ms: Some(60_000),
            verify_workers: 1,
        }
    }
}

/// One queued allocation job. The design is admitted (artifact resolved,
/// warm seed attached, cache consulted) at dispatch, so workers only
/// ever see well-formed work. The reply handle completes the originating
/// request on whichever protocol its connection negotiated.
struct Job {
    artifact: Arc<crate::admission::AdmissionArtifact>,
    knobs: Knobs,
    key: u128,
    deadline: Option<Instant>,
    accepted_at: Instant,
    reply: ReplyHandle,
}

struct Shared {
    queue: JobQueue<Job>,
    verify_queue: JobQueue<VerifyJob>,
    cache: ResultCache,
    verdicts: VerdictCache,
    admission: AdmissionCache,
    seeds: SeedIndex,
    warm_seeded: AtomicU64,
    reallocs: AtomicU64,
    stats: ServerStats,
    vstats: ServerStats,
    shutdown: Arc<AtomicBool>,
    wire: Arc<NetMetrics>,
    config: ServerConfig,
    backend: Arc<dyn AllocBackend>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Only the admission queue closes here: jobs already through
        // allocation must still reach the verifier lane, which drains
        // after the allocation workers exit (see Server::join).
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running allocation service. Bind with [`Server::bind`], stop with
/// [`Server::shutdown`] (or the wire `shutdown` command followed by
/// [`Server::join`]).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    net: Option<NetServer>,
    workers: Vec<JoinHandle<()>>,
    verifiers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// starts the I/O loop and worker threads, running jobs on the
    /// in-process [`LocalBackend`].
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        Server::bind_with_backend(addr, config, Arc::new(LocalBackend))
    }

    /// Like [`bind`](Server::bind) but with an explicit allocation
    /// backend (e.g. the cluster coordinator's).
    pub fn bind_with_backend(
        addr: &str,
        config: ServerConfig,
        backend: Arc<dyn AllocBackend>,
    ) -> io::Result<Server> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let wire = Arc::new(NetMetrics::default());
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            verify_queue: JobQueue::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            verdicts: VerdictCache::new(config.cache_capacity),
            admission: AdmissionCache::new(config.cache_capacity),
            seeds: SeedIndex::new(config.cache_capacity),
            warm_seeded: AtomicU64::new(0),
            reallocs: AtomicU64::new(0),
            stats: ServerStats::new(),
            vstats: ServerStats::new(),
            shutdown: Arc::clone(&shutdown),
            wire: Arc::clone(&wire),
            config: config.clone(),
            backend,
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("salsa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let verifiers = (0..config.verify_workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("salsa-verify-worker-{i}"))
                    .spawn(move || verifier_loop(&shared))
                    .expect("spawn verifier")
            })
            .collect();

        let handler_shared = Arc::clone(&shared);
        let handler: Handler =
            Box::new(move |incoming, handle| dispatch(&handler_shared, incoming, handle));
        let net_config = NetConfig {
            shutdown,
            max_in_flight: config.max_in_flight,
            busy_reply: Some(rejected_response(config.retry_after_ms)),
            idle_timeout: config.idle_timeout_ms.map(Duration::from_millis),
            shutdown_linger: Duration::from_millis(0),
            metrics: wire,
            ..NetConfig::default()
        };
        let net = NetServer::bind(addr, net_config, handler)?;
        let local_addr = net.local_addr();

        Ok(Server { local_addr, shared, net: Some(net), workers, verifiers })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts the graceful drain: stop admitting, finish what is queued.
    /// Idempotent; does not block.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been initiated (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Waits for the service to exit: the I/O loop (which drains every
    /// outstanding reply before stopping) and every worker. Blocks until
    /// the wire `shutdown` command or
    /// [`begin_shutdown`](Server::begin_shutdown) triggers the drain.
    pub fn join(mut self) {
        if let Some(net) = self.net.take() {
            net.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Only after the allocation workers exit can no new verify jobs
        // appear; close the lane and let it finish what is queued.
        self.shared.verify_queue.close();
        for verifier in self.verifiers.drain(..) {
            let _ = verifier.join();
        }
    }

    /// Convenience: [`begin_shutdown`](Server::begin_shutdown) then
    /// [`join`](Server::join).
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

fn payload(json: Json) -> Arc<Payload> {
    Arc::new(Payload::new(json))
}

/// The wire dispatch handler, run on the I/O thread. Everything cheap is
/// answered inline; allocation misses carry their reply handle into the
/// worker queue.
fn dispatch(shared: &Arc<Shared>, incoming: Incoming, handle: ReplyHandle) {
    let request = match incoming {
        Ok(json) => json,
        Err(message) => {
            let err = ServeError::new(ErrorKind::BadRequest, format!("invalid JSON: {message}"));
            handle.send(payload(error_response(&err)));
            return;
        }
    };
    let command = match parse_command(&request) {
        Ok(command) => command,
        Err(e) => {
            handle.send(payload(error_response(&e)));
            return;
        }
    };
    match command {
        Command::Ping => handle.send(payload(Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("pong", Json::Bool(true)),
        ]))),
        Command::Stats => handle.send(payload(stats_response(shared))),
        Command::Shutdown => {
            shared.begin_shutdown();
            handle.send_then_close(payload(Json::obj(vec![
                ("status", Json::Str("ok".into())),
                ("shutting_down", Json::Bool(true)),
            ])));
        }
        Command::Allocate(request) => {
            handle_allocate(shared, request.source, request.knobs, request.timeout_ms, None, handle)
        }
        Command::Reallocate(realloc) => {
            let request = realloc.request;
            handle_allocate(
                shared,
                request.source,
                request.knobs,
                request.timeout_ms,
                Some(realloc.base),
                handle,
            )
        }
        Command::Trace(id) => {
            // Answered inline from the verdict cache: artifacts are
            // already built, so this is a lookup, not a job.
            let response = match parse_trace_id(&id)
                .and_then(|trace_id| shared.verdicts.get_by_trace(trace_id))
            {
                Some(entry) => Json::obj(vec![
                    ("status", Json::Str("ok".into())),
                    ("artifact", entry.artifact.clone()),
                ]),
                None => error_response(&ServeError::new(
                    ErrorKind::BadRequest,
                    format!("unknown trace id '{id}' (certificates are cached; re-run the job)"),
                )),
            };
            handle.send(payload(response));
        }
    }
}

fn handle_allocate(
    shared: &Arc<Shared>,
    source: crate::protocol::GraphSource,
    mut knobs: Knobs,
    timeout_ms: Option<u64>,
    base: Option<u128>,
    handle: ReplyHandle,
) {
    if shared.shutting_down() {
        let err = ServeError::new(ErrorKind::ShuttingDown, "server is draining; not accepting jobs");
        handle.send(payload(error_response(&err)));
        return;
    }
    let artifact = match shared.admission.resolve(&source) {
        Ok(artifact) => artifact,
        Err(e) => {
            handle.send(payload(error_response(&e)));
            return;
        }
    };

    // Warm-start attachment happens *before* the cache key is computed:
    // the seed is part of the job's search identity, so a warm job and
    // its cold twin occupy distinct cache slots and can never alias.
    if knobs.warm.is_none() {
        if let Some(base_key) = base {
            // The explicit `reallocate` verb: seed from a named prior
            // winner, or fail loudly — silently running cold would hide
            // an expired base id from an incremental flow.
            match shared.seeds.get(base_key) {
                Some(entry) => {
                    let distance = artifact.sketch.distance(&entry.sketch);
                    knobs.warm =
                        Some(Arc::new(build_warm_spec(&entry, &artifact.graph, distance)));
                    shared.reallocs.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    let err = ServeError::new(
                        ErrorKind::BadRequest,
                        format!(
                            "unknown base job '{base_key:032x}' (the seed index keeps recent \
                             winners only; resubmit as 'allocate')"
                        ),
                    );
                    handle.send(payload(error_response(&err)));
                    return;
                }
            }
        } else if let Some((entry, distance)) = shared.seeds.nearest(&artifact.sketch) {
            // Transparent similarity seeding — but never from the same
            // design: an identical resubmission is either an exact cache
            // hit (same knobs) or a deliberate knob change whose cold
            // result must stay reproducible and verdict-cache-shareable.
            if entry.graph != artifact.graph {
                knobs.warm = Some(Arc::new(build_warm_spec(&entry, &artifact.graph, distance)));
                shared.warm_seeded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    let key = cache_key(&artifact.canonical_text, &knobs);
    if let Some(hit) = shared.cache.get(key) {
        // Exact hit: replay the stored payload — byte-verbatim on both
        // protocols, since the renderings live in the payload itself.
        handle.send(hit);
        return;
    }

    let deadline = timeout_ms
        .or(shared.config.default_timeout_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let job = Job { artifact, knobs, key, deadline, accepted_at: Instant::now(), reply: handle };
    match shared.queue.try_push(job) {
        Ok(()) => shared.stats.record_accepted(),
        Err(PushError::Full(job)) => {
            shared.stats.record_rejected();
            job.reply.send(payload(rejected_response(shared.config.retry_after_ms)));
        }
        Err(PushError::Closed(job)) => {
            let err =
                ServeError::new(ErrorKind::ShuttingDown, "server is draining; not accepting jobs");
            job.reply.send(payload(error_response(&err)));
        }
    }
}

fn stats_response(shared: &Arc<Shared>) -> Json {
    let snap = shared.stats.snapshot();
    let vsnap = shared.vstats.snapshot();
    let cache = &shared.cache;
    let wire = &shared.wire;
    let w = |counter: &std::sync::atomic::AtomicU64| Json::Int(counter.load(Ordering::Relaxed) as i64);
    Json::obj(vec![
        ("status", Json::Str("ok".into())),
        (
            "stats",
            Json::obj(vec![
                ("accepted", Json::Int(snap.accepted as i64)),
                ("rejected", Json::Int(snap.rejected as i64)),
                ("completed", Json::Int(snap.completed as i64)),
                ("failed", Json::Int(snap.failed as i64)),
                ("timeouts", Json::Int(snap.timeouts as i64)),
                (
                    "cache",
                    Json::obj(vec![
                        ("hits", Json::Int(cache.hits() as i64)),
                        ("misses", Json::Int(cache.misses() as i64)),
                        ("evictions", Json::Int(cache.evictions() as i64)),
                        ("entries", Json::Int(cache.len() as i64)),
                        ("hit_rate", Json::Float(cache.hit_rate())),
                    ]),
                ),
                (
                    "queue",
                    Json::obj(vec![
                        ("depth", Json::Int(shared.queue.depth() as i64)),
                        ("capacity", Json::Int(shared.queue.capacity() as i64)),
                    ]),
                ),
                (
                    "wire",
                    Json::obj(vec![
                        ("bytes_in", w(&wire.bytes_in)),
                        ("bytes_out", w(&wire.bytes_out)),
                        ("frames_in", w(&wire.frames_in)),
                        ("frames_out", w(&wire.frames_out)),
                        ("conns_opened", w(&wire.conns_opened)),
                        ("conns_active", w(&wire.conns_active)),
                        ("idle_evicted", w(&wire.idle_evicted)),
                    ]),
                ),
                (
                    "latency_ms",
                    Json::obj(vec![
                        ("p50", Json::Float(snap.p50_ms)),
                        ("p95", Json::Float(snap.p95_ms)),
                        ("p99", Json::Float(snap.p99_ms)),
                        ("samples", Json::Int(snap.samples as i64)),
                    ]),
                ),
                (
                    "verifier",
                    Json::obj(vec![
                        ("workers", Json::Int(shared.config.verify_workers.max(1) as i64)),
                        ("queue_depth", Json::Int(shared.verify_queue.depth() as i64)),
                        ("verified", Json::Int(vsnap.completed as i64)),
                        ("failed", Json::Int(vsnap.failed as i64)),
                        (
                            "cache",
                            Json::obj(vec![
                                ("hits", Json::Int(shared.verdicts.hits() as i64)),
                                ("misses", Json::Int(shared.verdicts.misses() as i64)),
                                ("entries", Json::Int(shared.verdicts.len() as i64)),
                            ]),
                        ),
                        (
                            "latency_ms",
                            Json::obj(vec![
                                ("p50", Json::Float(vsnap.p50_ms)),
                                ("p95", Json::Float(vsnap.p95_ms)),
                                ("p99", Json::Float(vsnap.p99_ms)),
                                ("samples", Json::Int(vsnap.samples as i64)),
                            ]),
                        ),
                    ]),
                ),
                (
                    "warm",
                    Json::obj(vec![
                        ("seeds", Json::Int(shared.seeds.len() as i64)),
                        ("seed_hits", Json::Int(shared.seeds.hits() as i64)),
                        ("seed_misses", Json::Int(shared.seeds.misses() as i64)),
                        ("seeded", w(&shared.warm_seeded)),
                        ("reallocations", w(&shared.reallocs)),
                        (
                            "admission",
                            Json::obj(vec![
                                ("hits", Json::Int(shared.admission.hits() as i64)),
                                ("misses", Json::Int(shared.admission.misses() as i64)),
                                ("entries", Json::Int(shared.admission.len() as i64)),
                            ]),
                        ),
                    ]),
                ),
                ("workers", Json::Int(shared.config.workers as i64)),
                ("backend", Json::Str(shared.backend.name().to_string())),
            ]),
        ),
    ])
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        process_job(shared, job);
    }
}

fn process_job(shared: &Arc<Shared>, job: Job) {
    let cancel = job.deadline.map(CancelToken::with_deadline);
    let outcome = shared.backend.allocate(&job.artifact, &job.knobs, cancel);
    let latency = job.accepted_at.elapsed();
    let body = match outcome {
        Ok((report, winner)) => {
            shared.stats.record_completed(latency);
            // Bank the winner (when the backend can hand one back) so
            // future near-duplicate designs warm-start from it. The job
            // key doubles as the `reallocate` base id the response
            // carries.
            if let Some(parts) = winner {
                let cost = report.get("cost").and_then(Json::as_u64).unwrap_or(0);
                shared.seeds.insert(SeedEntry {
                    key: job.key,
                    graph: job.artifact.graph.clone(),
                    parts,
                    cost,
                    sketch: job.artifact.sketch.clone(),
                });
            }
            if job.knobs.verify != VerifyMode::Off {
                // Hand the completed report (and the reply) to the
                // verifier lane; this worker goes straight back to
                // allocation. The response is not cached yet — the
                // cached payload for a verifying job must carry its
                // certificate.
                let handoff = VerifyJob {
                    artifact: job.artifact,
                    knobs: job.knobs,
                    key: job.key,
                    accepted_at: job.accepted_at,
                    reply: job.reply,
                    report,
                };
                match shared.verify_queue.push_wait(handoff) {
                    Ok(()) => {}
                    Err(PushError::Full(missed)) | Err(PushError::Closed(missed)) => {
                        // Shutdown race: the lane is gone, so answer
                        // uncertified rather than dropping the reply
                        // (and leave the cache alone).
                        missed.reply.send(payload(ok_response_keyed(missed.report, missed.key)));
                    }
                }
                return;
            }
            let body = payload(ok_response_keyed(report, job.key));
            shared.cache.insert(job.key, Arc::clone(&body));
            body
        }
        Err(err) => {
            if err.kind == ErrorKind::Timeout {
                shared.stats.record_timeout(latency);
            } else {
                shared.stats.record_failed(latency);
            }
            payload(error_response(&err))
        }
    };
    // The client may have disconnected while waiting; the handle is a
    // no-op then.
    job.reply.send(body);
}

fn verifier_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.verify_queue.pop() {
        process_verify(shared, job);
    }
}

/// Certifies one completed allocation and completes its reply: verdict
/// cache lookup by result fingerprint, the full record/replay/verify
/// pipeline on a miss, then the certified response is cached under the
/// job's result key and sent.
fn process_verify(shared: &Arc<Shared>, job: VerifyJob) {
    let started = Instant::now();
    let mode = job.knobs.verify;
    let mut canonical = job.report.clone();
    crate::report::canonicalize_report(&mut canonical);
    // The artifact already holds the rendered canonical text — the lane
    // neither re-parses nor re-renders what admission produced.
    let fingerprint =
        result_fingerprint(&job.artifact.canonical_text, &canonical.to_string_compact(), mode);

    let (entry, provenance) = match shared.verdicts.get(fingerprint) {
        Some(hit) => (hit, "hit"),
        None => match certify_job(&job.artifact.graph, &job.knobs, &job.report) {
            Ok((cert, artifact)) => {
                let verify_ms = started.elapsed().as_secs_f64() * 1e3;
                let entry = Arc::new(CertEntry {
                    trace_id: cert.trace.fingerprint(),
                    certificate: certificate_json(&cert, mode, verify_ms, "miss"),
                    artifact: artifact.to_json(),
                });
                shared.verdicts.insert(fingerprint, Arc::clone(&entry));
                (entry, "miss")
            }
            Err(err) => {
                shared.vstats.record_failed(started.elapsed());
                job.reply.send(payload(error_response(&err)));
                return;
            }
        },
    };

    let mut certificate = entry.certificate.clone();
    set_cache_provenance(&mut certificate, provenance);
    let mut report = job.report;
    if let Json::Obj(pairs) = &mut report {
        pairs.push(("certificate".to_string(), certificate));
    }
    let body = payload(ok_response_keyed(report, job.key));
    shared.cache.insert(job.key, Arc::clone(&body));
    // The lane's reservoir tracks verification latency only; the job's
    // end-to-end latency was recorded by the allocation worker.
    shared.vstats.record_completed(started.elapsed());
    job.reply.send(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn roundtrip(stream: &mut TcpStream, request: &str) -> Json {
        let mut line = request.to_string();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse_json(response.trim()).unwrap_or_else(|e| panic!("{response:?}: {e:?}"))
    }

    #[test]
    fn ping_stats_and_shutdown_over_the_wire() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();

        let pong = roundtrip(&mut stream, r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

        let stats = roundtrip(&mut stream, r#"{"cmd":"stats"}"#);
        let body = stats.get("stats").expect("stats body");
        assert_eq!(body.get("accepted").and_then(Json::as_u64), Some(0));
        assert_eq!(
            body.get("queue").and_then(|q| q.get("capacity")).and_then(Json::as_u64),
            Some(ServerConfig::default().queue_capacity as u64)
        );
        // The wire counters are live: this connection's traffic shows up.
        let wire = body.get("wire").expect("wire counters");
        assert!(wire.get("bytes_in").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(wire.get("conns_opened").and_then(Json::as_u64), Some(1));

        let bye = roundtrip(&mut stream, r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("shutting_down").and_then(Json::as_bool), Some(true));
        server.join();
    }

    #[test]
    fn verify_full_certifies_and_serves_the_trace_artifact() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        let response = roundtrip(
            &mut stream,
            r#"{"cmd":"allocate","bench":"paper_example","restarts":2,"verify":"full"}"#,
        );
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
        let report = response.get("report").expect("report");
        let cert = report.get("certificate").expect("certificate section");
        assert_eq!(cert.get("verdict").and_then(Json::as_str), Some("certified"));
        assert_eq!(cert.get("mode").and_then(Json::as_str), Some("full"));
        assert_eq!(cert.get("cache").and_then(Json::as_str), Some("miss"));
        assert!(cert.get("commits").and_then(Json::as_u64).unwrap() > 0);
        assert!(cert.get("verify_ms").and_then(Json::as_f64).is_some());
        let trace_id = cert.get("trace_id").and_then(Json::as_str).unwrap().to_string();

        // The artifact behind the certificate is served by `trace`, and
        // its embedded report is the canonical form of the live one.
        let traced = roundtrip(&mut stream, &format!(r#"{{"cmd":"trace","id":"{trace_id}"}}"#));
        assert_eq!(traced.get("status").and_then(Json::as_str), Some("ok"));
        let artifact = traced.get("artifact").expect("artifact");
        assert_eq!(
            artifact.get("format").and_then(Json::as_str),
            Some(salsa_audit::ARTIFACT_FORMAT)
        );
        let mut canonical = report.clone();
        if let Json::Obj(pairs) = &mut canonical {
            pairs.retain(|(k, _)| k != "certificate");
        }
        crate::report::canonicalize_report(&mut canonical);
        assert_eq!(
            artifact.get("report").and_then(Json::as_str),
            Some(canonical.to_string_compact().as_str())
        );

        // A result-invariant knob change (plan off) is a fresh job but
        // the same result: the verdict comes from the cache.
        let replayed = roundtrip(
            &mut stream,
            r#"{"cmd":"allocate","bench":"paper_example","restarts":2,"verify":"full","plan":false}"#,
        );
        let cert2 = replayed.get("report").and_then(|r| r.get("certificate")).unwrap();
        assert_eq!(cert2.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(cert2.get("trace_id").and_then(Json::as_str), Some(trace_id.as_str()));

        // Unknown trace ids get a structured error; the stats response
        // shows the verifier lane's counters.
        let missing = roundtrip(&mut stream, r#"{"cmd":"trace","id":"00"}"#);
        assert_eq!(missing.get("status").and_then(Json::as_str), Some("error"));
        let stats = roundtrip(&mut stream, r#"{"cmd":"stats"}"#);
        let verifier = stats.get("stats").and_then(|s| s.get("verifier")).expect("verifier");
        assert_eq!(verifier.get("verified").and_then(Json::as_u64), Some(2));
        let vcache = verifier.get("cache").unwrap();
        assert_eq!(vcache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(vcache.get("entries").and_then(Json::as_u64), Some(1));

        server.shutdown();
    }

    #[test]
    fn malformed_json_gets_a_structured_error_not_a_hangup() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let err = roundtrip(&mut stream, "{not json");
        assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad-request"));
        // The connection survives the bad line.
        let pong = roundtrip(&mut stream, r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
        server.shutdown();
    }
}
