//! The newline-delimited JSON wire protocol: request parsing, response
//! shapes, structured errors, and the content-address of a job.
//!
//! One request per line, one JSON object per request; the server answers
//! with exactly one JSON object per line. Commands:
//!
//! ```json
//! {"cmd":"allocate","bench":"ewf","seed":1,"restarts":4,"timeout_ms":5000}
//! {"cmd":"allocate","cdfg":"cdfg t\ninput x\n...","steps":6}
//! {"cmd":"allocate","bench":"ewf","verify":"full"}
//! {"cmd":"reallocate","base":"<job id>","cdfg":"cdfg t\n...edited...","seed":1}
//! {"cmd":"trace","id":"<certificate trace_id>"}
//! {"cmd":"stats"}
//! {"cmd":"ping"}
//! {"cmd":"shutdown"}
//! ```
//!
//! `reallocate` is `allocate` plus a `base`: the job id of a prior
//! result (every ok response carries its `id`) whose winning allocation
//! seeds the new search. The design is the *edited* CDFG; the server
//! matches it against the base by label and warm-starts from the old
//! winner.
//!
//! Responses carry a `status` of `ok`, `error` (with a machine-readable
//! `kind`, and `line`/`column` for CDFG parse errors), or `rejected`
//! (backpressure, with a `retry_after_ms` hint).

use std::sync::Arc;

use salsa_alloc::WarmSpec;
use salsa_audit::VerifyMode;
use salsa_cdfg::{fnv1a_128, ParseError};

use crate::json::Json;

/// Benchmarks servable by name, with the paper's aliases mapped onto the
/// workspace's canonical names.
pub const BENCH_ALIASES: &[(&str, &str)] = &[
    ("hal", "diffeq"),
    ("fir", "fir16"),
    ("ar", "ar_lattice"),
    ("fir-array", "fir8a"),
    ("matmul", "mm2"),
];

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run (or replay from cache) an allocation.
    Allocate(AllocRequest),
    /// Re-allocate an edited design warm-started from a prior job's
    /// winner, named by its job id.
    Reallocate(ReallocRequest),
    /// Fetch a certified job's trace artifact by its certificate's
    /// `trace_id`, for offline audit (`salsa audit`).
    Trace(String),
    /// Report service counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin the graceful drain-then-exit.
    Shutdown,
}

/// Where the design comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// A built-in benchmark, by (possibly aliased) name.
    Bench(String),
    /// Inline CDFG text in the request.
    Text(String),
}

/// Search knobs. Every field participates in the cache key: two requests
/// with any knob differing are different jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Knobs {
    /// Schedule length (control steps); `None` = as-soon-as-possible.
    pub steps: Option<usize>,
    /// Registers beyond the schedule's minimum.
    pub extra_regs: usize,
    /// Base random seed.
    pub seed: u64,
    /// Independent restart chains.
    pub restarts: usize,
    /// Portfolio worker cap; `None` = machine parallelism.
    pub threads: Option<usize>,
    /// Speculative move-batch size; `None` = sequential inner loop. Part
    /// of the cache key (results are deterministic in `(seed, batch)` but
    /// differ across batch sizes); thread counts never change the result.
    pub batch: Option<usize>,
    /// Best-bound cutoff factor; `None` = the allocator default.
    pub cutoff: Option<f64>,
    /// Use the pipelined functional-unit library.
    pub pipelined: bool,
    /// Restrict to the traditional (pre-SALSA) move set.
    pub traditional: bool,
    /// Drive the move proposers from the compiled move plan (the
    /// default). Never changes the result — kept in the cache key anyway
    /// so an A/B pair of requests is two observable jobs, not one cache
    /// hit.
    pub plan: bool,
    /// Enable the M move family on memory graphs (the default). A
    /// scalar design ignores it; on a memory design turning it off
    /// freezes bank assignment at the initial greedy placement — the
    /// M-off ablation. Part of the cache key.
    pub mem_moves: bool,
    /// How much verification the job asked for (`off`/`sample`/`full`).
    /// At `Sample` or `Full` the response's report gains a `certificate`
    /// section produced by the verifier lane. Part of the cache key:
    /// certified and uncertified responses are different payloads.
    pub verify: VerifyMode,
    /// The warm-start seed the search begins from (`None` = cold,
    /// constructive start). Part of the cache key — a warm and a cold
    /// run of the same design are different jobs and must never alias —
    /// and of the trace artifact, so offline audit replays the seeded
    /// trajectory. Requests rarely spell this directly; the server
    /// attaches it at admission (similarity seeding, `reallocate`).
    pub warm: Option<Arc<WarmSpec>>,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            steps: None,
            extra_regs: 0,
            seed: 42,
            restarts: 1,
            threads: None,
            batch: None,
            cutoff: None,
            pipelined: false,
            traditional: false,
            plan: true,
            mem_moves: true,
            verify: VerifyMode::Off,
            warm: None,
        }
    }
}

/// An allocation request: the design, the knobs, and the deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocRequest {
    /// The design to allocate.
    pub source: GraphSource,
    /// Search configuration (all cache-keyed).
    pub knobs: Knobs,
    /// Per-job deadline in milliseconds; `None` = the server default.
    /// Not part of the cache key — the result of a completed job does
    /// not depend on how long it was allowed to take.
    pub timeout_ms: Option<u64>,
}

/// A `reallocate` request: an ordinary allocation of the edited design,
/// warm-started from the named base job's winner.
#[derive(Debug, Clone, PartialEq)]
pub struct ReallocRequest {
    /// The base job id (an ok response's `id`: the result-cache key in
    /// hex) whose winning allocation seeds the search.
    pub base: u128,
    /// The edited design and its knobs, exactly as `allocate` takes
    /// them.
    pub request: AllocRequest,
}

/// Machine-readable error categories carried in the `kind` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON, missing/invalid fields, or an unknown benchmark.
    BadRequest,
    /// The CDFG text failed to parse (carries line/column).
    Parse,
    /// Scheduling failed (e.g. infeasible step count).
    Schedule,
    /// The allocation itself failed.
    Alloc,
    /// The certification pipeline failed (broken trace, cost
    /// disagreement, or a malformed report handed to the verifier).
    Audit,
    /// The job's deadline expired before the search completed.
    Timeout,
    /// The server is draining and no longer admits jobs.
    ShuttingDown,
}

impl ErrorKind {
    /// The wire spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Parse => "parse",
            ErrorKind::Schedule => "schedule",
            ErrorKind::Alloc => "alloc",
            ErrorKind::Audit => "audit",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting-down",
        }
    }
}

/// A structured service error, renderable as an error response.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// Category for programmatic handling.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// 1-based source line, for [`ErrorKind::Parse`].
    pub line: Option<usize>,
    /// 1-based byte column, for [`ErrorKind::Parse`].
    pub column: Option<usize>,
}

impl ServeError {
    /// An error with no source position.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ServeError { kind, message: message.into(), line: None, column: None }
    }

    /// Wraps a CDFG parse error, preserving its position.
    pub fn from_parse(err: &ParseError) -> Self {
        ServeError {
            kind: ErrorKind::Parse,
            message: err.to_string(),
            line: (err.line > 0).then_some(err.line),
            column: (err.column > 0).then_some(err.column),
        }
    }
}

/// Renders the `{"status":"error",...}` response object.
pub fn error_response(err: &ServeError) -> Json {
    let mut pairs = vec![
        ("status", Json::Str("error".into())),
        ("kind", Json::Str(err.kind.as_str().into())),
        ("message", Json::Str(err.message.clone())),
    ];
    if let Some(line) = err.line {
        pairs.push(("line", Json::Int(line as i64)));
    }
    if let Some(column) = err.column {
        pairs.push(("column", Json::Int(column as i64)));
    }
    Json::obj(pairs)
}

/// Renders the backpressure rejection response.
pub fn rejected_response(retry_after_ms: u64) -> Json {
    Json::obj(vec![
        ("status", Json::Str("rejected".into())),
        ("retry_after_ms", Json::Int(retry_after_ms as i64)),
    ])
}

/// Renders a successful allocation response around a report object.
pub fn ok_response(report: Json) -> Json {
    Json::obj(vec![("status", Json::Str("ok".into())), ("report", report)])
}

/// [`ok_response`] plus the job's `id` — the result-cache key in hex,
/// which `reallocate` accepts as its `base`. Deterministic in
/// `(canonical text, knobs)`, so cached response bytes stay replayable.
pub fn ok_response_keyed(report: Json, key: u128) -> Json {
    Json::obj(vec![
        ("status", Json::Str("ok".into())),
        ("id", Json::Str(format!("{key:032x}"))),
        ("report", report),
    ])
}

/// Resolves a benchmark alias (`hal` → `diffeq`, …) to its canonical
/// workspace name.
pub fn canonical_bench_name(name: &str) -> &str {
    BENCH_ALIASES
        .iter()
        .find(|(alias, _)| *alias == name)
        .map(|(_, canonical)| *canonical)
        .unwrap_or(name)
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServeError::new(ErrorKind::BadRequest, format!("'{key}' must be a non-negative integer"))
        }),
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<Option<f64>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, format!("'{key}' must be a number"))),
    }
}

fn field_bool(obj: &Json, key: &str) -> Result<bool, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, format!("'{key}' must be a boolean"))),
    }
}

/// Upper bound on `restarts` per job — the queue bounds jobs, this bounds
/// the work a single job may demand.
pub const MAX_RESTARTS: usize = 4096;

/// Parses one request object into a [`Command`].
pub fn parse_command(request: &Json) -> Result<Command, ServeError> {
    if !matches!(request, Json::Obj(_)) {
        return Err(ServeError::new(ErrorKind::BadRequest, "request must be a JSON object"));
    }
    let cmd = request
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, "missing string field 'cmd'"))?;
    match cmd {
        "stats" => Ok(Command::Stats),
        "ping" => Ok(Command::Ping),
        "shutdown" => Ok(Command::Shutdown),
        "allocate" => Ok(Command::Allocate(parse_alloc_request(request)?)),
        "reallocate" => {
            let base = request.get("base").and_then(Json::as_str).ok_or_else(|| {
                ServeError::new(
                    ErrorKind::BadRequest,
                    "reallocate needs a string field 'base' (a prior response's job id)",
                )
            })?;
            let base = (!base.is_empty() && base.len() <= 32)
                .then(|| u128::from_str_radix(base, 16).ok())
                .flatten()
                .ok_or_else(|| {
                    ServeError::new(ErrorKind::BadRequest, format!("bad job id '{base}'"))
                })?;
            Ok(Command::Reallocate(ReallocRequest { base, request: parse_alloc_request(request)? }))
        }
        "trace" => {
            let id = request.get("id").and_then(Json::as_str).ok_or_else(|| {
                ServeError::new(ErrorKind::BadRequest, "trace needs a string field 'id'")
            })?;
            Ok(Command::Trace(id.to_string()))
        }
        other => Err(ServeError::new(
            ErrorKind::BadRequest,
            format!(
                "unknown cmd '{other}' (expected allocate, reallocate, trace, stats, ping or shutdown)"
            ),
        )),
    }
}

fn parse_alloc_request(obj: &Json) -> Result<AllocRequest, ServeError> {
    let bench = obj.get("bench").and_then(Json::as_str);
    let text = obj.get("cdfg").and_then(Json::as_str);
    let source = match (bench, text) {
        (Some(name), None) => GraphSource::Bench(name.to_string()),
        (None, Some(src)) => GraphSource::Text(src.to_string()),
        (Some(_), Some(_)) => {
            return Err(ServeError::new(
                ErrorKind::BadRequest,
                "give either 'bench' or 'cdfg', not both",
            ))
        }
        (None, None) => {
            return Err(ServeError::new(
                ErrorKind::BadRequest,
                "allocate needs a design: 'bench' (name) or 'cdfg' (text)",
            ))
        }
    };
    let knobs = knobs_from_json(obj)?;
    Ok(AllocRequest { source, knobs, timeout_ms: field_u64(obj, "timeout_ms")? })
}

/// Parses the knob fields out of a request-shaped object (unset fields
/// take their [`Knobs::default`] values). Shared by `allocate` request
/// parsing and the cluster protocol, which ships a job's knobs to worker
/// processes in exactly the request spelling.
pub fn knobs_from_json(obj: &Json) -> Result<Knobs, ServeError> {
    let steps = field_u64(obj, "steps")?.map(|s| s as usize);
    if steps == Some(0) {
        return Err(ServeError::new(ErrorKind::BadRequest, "'steps' must be at least 1"));
    }
    let restarts = field_u64(obj, "restarts")?.map(|r| r as usize).unwrap_or(1);
    if restarts == 0 || restarts > MAX_RESTARTS {
        return Err(ServeError::new(
            ErrorKind::BadRequest,
            format!("'restarts' must be in 1..={MAX_RESTARTS}"),
        ));
    }
    Ok(Knobs {
        steps,
        extra_regs: field_u64(obj, "extra_regs")?.map(|e| e as usize).unwrap_or(0),
        seed: field_u64(obj, "seed")?.unwrap_or(42),
        restarts,
        threads: field_u64(obj, "threads")?.map(|t| (t as usize).max(1)),
        batch: field_u64(obj, "batch")?.map(|b| (b as usize).max(1)),
        cutoff: field_f64(obj, "cutoff")?,
        pipelined: field_bool(obj, "pipelined")?,
        traditional: field_bool(obj, "traditional")?,
        // Unlike the other booleans, absent means *true*.
        plan: match obj.get("plan") {
            None | Some(Json::Null) => true,
            Some(v) => v.as_bool().ok_or_else(|| {
                ServeError::new(ErrorKind::BadRequest, "'plan' must be a boolean")
            })?,
        },
        // Absent means *true*, like `plan`.
        mem_moves: match obj.get("mem_moves") {
            None | Some(Json::Null) => true,
            Some(v) => v.as_bool().ok_or_else(|| {
                ServeError::new(ErrorKind::BadRequest, "'mem_moves' must be a boolean")
            })?,
        },
        verify: match obj.get("verify") {
            None | Some(Json::Null) => VerifyMode::Off,
            Some(v) => v.as_str().and_then(VerifyMode::parse).ok_or_else(|| {
                ServeError::new(ErrorKind::BadRequest, "'verify' must be off, sample or full")
            })?,
        },
        warm: match obj.get("warm") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let text = v.as_str().ok_or_else(|| {
                    ServeError::new(ErrorKind::BadRequest, "'warm' must be a seed string")
                })?;
                Some(Arc::new(WarmSpec::decode(text).map_err(|e| {
                    ServeError::new(ErrorKind::BadRequest, format!("bad 'warm' seed: {e}"))
                })?))
            }
        },
    })
}

/// Renders knobs as a JSON object in the request spelling, the inverse
/// of [`knobs_from_json`]: unset options are omitted, and the rendering
/// round-trips exactly (floats use shortest-roundtrip formatting).
pub fn knobs_to_json(knobs: &Knobs) -> Json {
    let mut pairs = Vec::with_capacity(9);
    if let Some(steps) = knobs.steps {
        pairs.push(("steps", Json::Int(steps as i64)));
    }
    pairs.push(("extra_regs", Json::Int(knobs.extra_regs as i64)));
    pairs.push(("seed", Json::Int(knobs.seed as i64)));
    pairs.push(("restarts", Json::Int(knobs.restarts as i64)));
    if let Some(threads) = knobs.threads {
        pairs.push(("threads", Json::Int(threads as i64)));
    }
    if let Some(batch) = knobs.batch {
        pairs.push(("batch", Json::Int(batch as i64)));
    }
    if let Some(cutoff) = knobs.cutoff {
        pairs.push(("cutoff", Json::Float(cutoff)));
    }
    if knobs.pipelined {
        pairs.push(("pipelined", Json::Bool(true)));
    }
    if knobs.traditional {
        pairs.push(("traditional", Json::Bool(true)));
    }
    if !knobs.plan {
        pairs.push(("plan", Json::Bool(false)));
    }
    if !knobs.mem_moves {
        pairs.push(("mem_moves", Json::Bool(false)));
    }
    if knobs.verify != VerifyMode::Off {
        pairs.push(("verify", Json::Str(knobs.verify.as_str().into())));
    }
    if let Some(warm) = &knobs.warm {
        pairs.push(("warm", Json::Str(warm.encode())));
    }
    Json::obj(pairs)
}

/// The content address of a job: FNV-1a 128 over the canonical CDFG text
/// plus a canonical rendering of every search knob. Sound as a cache key
/// because the canonical text is a print/parse fixpoint and the search is
/// deterministic in (text, knobs) — see the crate docs.
pub fn cache_key(canonical_text: &str, knobs: &Knobs) -> u128 {
    let mut keyed = String::with_capacity(canonical_text.len() + 96);
    keyed.push_str(canonical_text);
    keyed.push_str("\x00knobs\x00");
    keyed.push_str(&format!(
        "steps={:?};extra_regs={};seed={};restarts={};threads={:?};batch={:?};cutoff={:?};pipelined={};traditional={};plan={};mem_moves={};verify={};warm={}",
        knobs.steps,
        knobs.extra_regs,
        knobs.seed,
        knobs.restarts,
        knobs.threads,
        knobs.batch,
        knobs.cutoff,
        knobs.pipelined,
        knobs.traditional,
        knobs.plan,
        knobs.mem_moves,
        knobs.verify.as_str(),
        knobs.warm.as_ref().map_or_else(|| "-".to_string(), |w| w.encode()),
    ));
    fnv1a_128(keyed.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn parses_a_full_allocate_request() {
        let req = parse_json(
            r#"{"cmd":"allocate","bench":"ewf","steps":17,"seed":7,"restarts":4,
                "threads":2,"batch":8,"cutoff":1.5,"extra_regs":1,"pipelined":true,
                "traditional":true,"verify":"full","timeout_ms":2000}"#,
        )
        .unwrap();
        let Command::Allocate(alloc) = parse_command(&req).unwrap() else {
            panic!("expected allocate")
        };
        assert_eq!(alloc.source, GraphSource::Bench("ewf".into()));
        assert_eq!(alloc.knobs.steps, Some(17));
        assert_eq!(alloc.knobs.seed, 7);
        assert_eq!(alloc.knobs.restarts, 4);
        assert_eq!(alloc.knobs.threads, Some(2));
        assert_eq!(alloc.knobs.batch, Some(8));
        assert_eq!(alloc.knobs.cutoff, Some(1.5));
        assert_eq!(alloc.knobs.extra_regs, 1);
        assert!(alloc.knobs.pipelined);
        assert!(alloc.knobs.traditional);
        assert_eq!(alloc.knobs.verify, VerifyMode::Full);
        assert_eq!(alloc.timeout_ms, Some(2000));
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let req = parse_json(r#"{"cmd":"allocate","bench":"dct"}"#).unwrap();
        let Command::Allocate(alloc) = parse_command(&req).unwrap() else {
            panic!("expected allocate")
        };
        assert_eq!(alloc.knobs, Knobs::default());
        assert_eq!(alloc.knobs.seed, 42);
        assert_eq!(alloc.timeout_ms, None);
    }

    #[test]
    fn rejects_malformed_requests_with_bad_request() {
        let cases = [
            (r#"[1,2]"#, "object"),
            (r#"{"bench":"ewf"}"#, "cmd"),
            (r#"{"cmd":"frobnicate"}"#, "unknown cmd"),
            (r#"{"cmd":"allocate"}"#, "needs a design"),
            (r#"{"cmd":"allocate","bench":"ewf","cdfg":"x"}"#, "not both"),
            (r#"{"cmd":"allocate","bench":"ewf","steps":0}"#, "steps"),
            (r#"{"cmd":"allocate","bench":"ewf","restarts":0}"#, "restarts"),
            (r#"{"cmd":"allocate","bench":"ewf","seed":-3}"#, "seed"),
            (r#"{"cmd":"allocate","bench":"ewf","pipelined":"yes"}"#, "boolean"),
            (r#"{"cmd":"allocate","bench":"ewf","verify":"loud"}"#, "verify"),
            (r#"{"cmd":"allocate","bench":"ewf","warm":"garbage"}"#, "warm"),
            (r#"{"cmd":"reallocate","bench":"ewf"}"#, "base"),
            (r#"{"cmd":"reallocate","base":"xyz","bench":"ewf"}"#, "job id"),
            (r#"{"cmd":"trace"}"#, "id"),
        ];
        for (raw, needle) in cases {
            let req = parse_json(raw).unwrap();
            let err = parse_command(&req).expect_err(raw);
            assert_eq!(err.kind, ErrorKind::BadRequest, "{raw}");
            assert!(err.message.contains(needle), "{raw}: {}", err.message);
        }
    }

    #[test]
    fn seeds_above_i64_survive_the_wire() {
        // u64 seeds near the top of the range are Int-encoded losslessly
        // up to i64::MAX; beyond that the protocol rejects rather than
        // silently rounding through a double.
        let req = parse_json(&format!(r#"{{"cmd":"allocate","bench":"ewf","seed":{}}}"#, i64::MAX))
            .unwrap();
        let Command::Allocate(alloc) = parse_command(&req).unwrap() else { panic!() };
        assert_eq!(alloc.knobs.seed, i64::MAX as u64);
    }

    #[test]
    fn cache_key_separates_every_knob() {
        let text = "cdfg t\ninput x\nop y = add x x\noutput y\n";
        let base = Knobs::default();
        let key = |k: &Knobs| cache_key(text, k);
        let variants = [
            Knobs { steps: Some(9), ..base.clone() },
            Knobs { extra_regs: 1, ..base.clone() },
            Knobs { seed: 43, ..base.clone() },
            Knobs { restarts: 2, ..base.clone() },
            Knobs { threads: Some(2), ..base.clone() },
            Knobs { batch: Some(8), ..base.clone() },
            Knobs { cutoff: Some(1.5), ..base.clone() },
            Knobs { pipelined: true, ..base.clone() },
            Knobs { traditional: true, ..base.clone() },
            Knobs { plan: false, ..base.clone() },
            Knobs { mem_moves: false, ..base.clone() },
            Knobs { verify: VerifyMode::Sample, ..base.clone() },
            Knobs { verify: VerifyMode::Full, ..base.clone() },
            Knobs { warm: Some(Arc::new(WarmSpec::new())), ..base.clone() },
            Knobs {
                warm: Some(Arc::new(WarmSpec { source: 7, ..WarmSpec::new() })),
                ..base.clone()
            },
        ];
        let base_key = key(&base);
        for v in &variants {
            assert_ne!(key(v), base_key, "{v:?}");
        }
        // Different text, same knobs — different key too.
        assert_ne!(cache_key("cdfg u\ninput x\nop y = add x x\noutput y\n", &base), base_key);
        // Stable for identical inputs.
        assert_eq!(key(&base), base_key);
    }

    #[test]
    fn knobs_roundtrip_through_their_wire_spelling() {
        let full = Knobs {
            steps: Some(17),
            extra_regs: 1,
            seed: 7,
            restarts: 4,
            threads: Some(2),
            batch: Some(8),
            cutoff: Some(1.25),
            pipelined: true,
            traditional: true,
            plan: false,
            mem_moves: false,
            verify: VerifyMode::Full,
            warm: Some(Arc::new(WarmSpec {
                op_fu: vec![(0, 2), (3, 1)],
                focus_ops: vec![4],
                source: 0xabcd,
                distance: 3,
                ..WarmSpec::new()
            })),
        };
        for knobs in [Knobs::default(), full] {
            let rendered = knobs_to_json(&knobs);
            let reparsed = parse_json(&rendered.to_string_compact()).unwrap();
            assert_eq!(knobs_from_json(&reparsed).unwrap(), knobs);
        }
    }

    #[test]
    fn error_response_carries_position_for_parse_errors() {
        let parse_err = salsa_cdfg::parse_cdfg("cdfg t\ninput x\nop y = add x nosuch\noutput y\n")
            .expect_err("dangling reference");
        let err = ServeError::from_parse(&parse_err);
        let json = error_response(&err);
        assert_eq!(json.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("parse"));
        assert_eq!(json.get("line").and_then(Json::as_i64), Some(3));
        assert!(json.get("column").and_then(Json::as_i64).is_some());
    }

    #[test]
    fn aliases_resolve_to_canonical_benchmarks() {
        assert_eq!(canonical_bench_name("hal"), "diffeq");
        assert_eq!(canonical_bench_name("fir"), "fir16");
        assert_eq!(canonical_bench_name("ar"), "ar_lattice");
        assert_eq!(canonical_bench_name("ewf"), "ewf");
        assert_eq!(canonical_bench_name("dct"), "dct");
    }
}
