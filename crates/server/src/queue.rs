//! A bounded MPMC job queue with explicit backpressure and drain-aware
//! shutdown, on `Mutex` + `Condvar` (std-only, no external channels).
//!
//! Admission never blocks: [`try_push`](JobQueue::try_push) either
//! admits the job or returns it with [`PushError::Full`] so the caller
//! can answer *reject-with-retry-after* instead of queueing unboundedly —
//! under overload the queue sheds load at the door rather than growing
//! latency without limit. Workers block in [`pop`](JobQueue::pop) until
//! a job or shutdown arrives. [`close`](JobQueue::close) starts a
//! graceful drain: no further admissions, but queued jobs are still
//! handed out until the queue empties, after which every `pop` returns
//! `None` and workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back for a
    /// backpressure reply.
    Full(T),
    /// The queue is draining for shutdown.
    Closed(T),
}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. `T` is the job payload.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    available: Condvar,
    space: Condvar,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` pending jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State { jobs: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            available: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently pending (racy snapshot, for stats).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Admits `job` or returns it immediately — never blocks.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(job));
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until the queue has room, then admits `job`. Returns the
    /// job with [`PushError::Closed`] if the queue is (or becomes)
    /// closed while waiting. The hand-off path between internal lanes
    /// (allocation workers feeding the verifier pool) uses this: unlike
    /// client admissions, internal producers prefer brief backpressure
    /// over dropping certified work.
    pub fn push_wait(&self, job: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(PushError::Closed(job));
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                drop(state);
                self.available.notify_one();
                return Ok(());
            }
            state = self.space.wait(state).expect("queue poisoned");
        }
    }

    /// Blocks until a job is available (returning it) or the queue is
    /// closed *and* drained (returning `None` — the worker's signal to
    /// exit).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Starts the drain: refuses new admissions, lets workers consume
    /// what is queued, then releases them.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
        self.space.notify_all();
    }

    /// Whether [`close`](JobQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_at_capacity() {
        let q = JobQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_releases() {
        let q = Arc::new(JobQueue::new(8));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        // Queued jobs still come out, then None.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_wait_blocks_until_space_or_close() {
        let q = Arc::new(JobQueue::new(1));
        q.try_push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(2))
        };
        // The producer is blocked on a full queue; popping frees a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(2));

        // A blocked push_wait is released by close, returning the job.
        q.try_push(7).unwrap();
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(8))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(PushError::Closed(8)));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_jobs() {
        let q = Arc::new(JobQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(j) = q.pop() {
                        got.push(j);
                    }
                    got
                })
            })
            .collect();
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for i in 0..200 {
            loop {
                match q.try_push(i) {
                    Ok(()) => {
                        accepted += 1;
                        break;
                    }
                    Err(PushError::Full(_)) => {
                        rejected += 1;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
        assert_eq!(total, accepted);
        assert_eq!(accepted, 200);
        let _ = rejected; // under load some pushes see Full; all retry through
    }
}
