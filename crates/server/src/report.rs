//! The allocation report as JSON — the one serializer shared by the
//! server's `allocate` responses and the CLI's `--json` output mode, so a
//! report reads identically whether it came over the wire or off the
//! terminal.
//!
//! Key order is fixed (insertion-ordered objects), so serializing the
//! same result twice yields the same bytes except for the timing fields,
//! which measure the run that produced them.

use salsa_alloc::AllocResult;
use salsa_cdfg::Cdfg;
use salsa_datapath::{bus_allocate, traffic_from_rtl};
use salsa_sched::Schedule;

use crate::json::Json;

/// Serializes an allocation result (plus the schedule and knobs it was
/// produced under) into the protocol's report object.
pub fn report_json(graph: &Cdfg, schedule: &Schedule, seed: u64, result: &AllocResult) -> Json {
    let bus = bus_allocate(&traffic_from_rtl(&result.rtl));
    let stats = &result.stats;
    let portfolio = &result.portfolio;
    let mut breakdown = vec![
        ("fu_area", Json::Int(result.breakdown.fu_area as i64)),
        ("registers", Json::Int(result.breakdown.used_regs as i64)),
        ("mux_equiv", Json::Int(result.breakdown.mux_equiv as i64)),
        ("connections", Json::Int(result.breakdown.connections as i64)),
    ];
    if graph.has_memory() {
        // Memory terms appear only for memory designs, keeping scalar
        // reports byte-identical to their pre-memory form.
        breakdown.push(("mem_banks", Json::Int(result.breakdown.mem_banks as i64)));
        breakdown.push(("addr_mux", Json::Int(result.breakdown.addr_mux as i64)));
        breakdown.push(("bank_conflicts", Json::Int(result.breakdown.bank_conflicts as i64)));
    }
    let mut pairs = vec![
        ("design", Json::Str(graph.name().to_string())),
        ("steps", Json::Int(schedule.n_steps() as i64)),
        ("seed", Json::Int(seed as i64)),
        ("cost", Json::Int(result.cost as i64)),
        ("breakdown", Json::obj(breakdown)),
        (
            "mux",
            Json::obj(vec![
                ("point_to_point", Json::Int(result.breakdown.mux_equiv as i64)),
                ("merged", Json::Int(result.merged_mux_count() as i64)),
            ]),
        ),
        (
            "bus",
            Json::obj(vec![
                ("buses", Json::Int(bus.num_buses() as i64)),
                ("mux_equiv", Json::Int(bus.total_mux_equiv() as i64)),
            ]),
        ),
        (
            "search",
            Json::obj(vec![
                ("trials", Json::Int(stats.trials as i64)),
                ("attempted", Json::Int(stats.attempted as i64)),
                ("accepted", Json::Int(stats.accepted as i64)),
                ("uphill_accepted", Json::Int(stats.uphill_accepted as i64)),
                ("proposed", Json::Int(stats.proposed as i64)),
                ("conflict_skipped", Json::Int(stats.conflict_skipped as i64)),
                ("stale_skipped", Json::Int(stats.stale_skipped as i64)),
                ("committed", Json::Int(stats.committed as i64)),
                ("initial_cost", Json::Int(stats.initial_cost as i64)),
                ("final_cost", Json::Int(stats.final_cost as i64)),
                ("trials_to_best", Json::Int(stats.trials_to_best as i64)),
                ("elapsed_ms", Json::Float(stats.elapsed_nanos as f64 / 1e6)),
                ("moves_per_sec", Json::Float(stats.moves_per_sec())),
            ]),
        ),
        (
            "portfolio",
            Json::obj(vec![
                ("threads", Json::Int(portfolio.threads as i64)),
                ("chains", Json::Int(portfolio.chains.len() as i64)),
                ("completed", Json::Int(portfolio.completed() as i64)),
                ("cutoff", Json::Int(portfolio.abandoned() as i64)),
                ("winner_slot", Json::Int(portfolio.winner_slot as i64)),
                ("speedup", Json::Float(portfolio.speedup())),
            ]),
        ),
        ("verified", Json::Bool(result.verified())),
    ];
    // Warm-start provenance, present exactly when the job carried a
    // seed: how the search actually started, where the seed came from,
    // how far the base design was, and how fast the best was reached.
    // Deterministic in `(inputs, knobs)` like the rest of the report, so
    // it survives canonicalization and byte-replay untouched.
    if let Some(warm) = &result.warm {
        let section = Json::obj(vec![
            ("mode", Json::Str(warm.mode.as_str().to_string())),
            ("source", Json::Str(format!("{:032x}", warm.source))),
            ("distance", Json::Int(warm.distance as i64)),
            ("bias_trials", Json::Int(warm.bias_trials as i64)),
            ("trials_to_best", Json::Int(stats.trials_to_best as i64)),
        ]);
        let at = pairs.iter().position(|(k, _)| *k == "verified").unwrap_or(pairs.len());
        pairs.insert(at, ("warm_start", section));
    }
    Json::obj(pairs)
}

/// Zeroes the wall-clock fields of a report — `search.elapsed_ms`,
/// `search.moves_per_sec`, `portfolio.speedup`, and
/// `certificate.verify_ms` — in place.
///
/// Everything else in a report is deterministic in `(design, knobs)`;
/// only these three measure the run that produced them. The byte-exact
/// contracts (`threads(1)` ≡ sequential, `batch(1)` ≡ sequential,
/// 1-worker cluster ≡ local portfolio) and the CI report diffs compare
/// reports in this canonical form. Accepts either a bare report object
/// or a full `{"status":"ok","report":{...}}` response.
pub fn canonicalize_report(json: &mut Json) {
    if let Json::Obj(pairs) = json {
        for (key, value) in pairs.iter_mut() {
            match key.as_str() {
                "report" => canonicalize_report(value),
                "search" => zero_fields(value, &["elapsed_ms", "moves_per_sec"]),
                "portfolio" => zero_fields(value, &["speedup"]),
                "certificate" => zero_fields(value, &["verify_ms"]),
                _ => {}
            }
        }
    }
}

fn zero_fields(obj: &mut Json, keys: &[&str]) {
    if let Json::Obj(pairs) = obj {
        for (key, value) in pairs.iter_mut() {
            if keys.contains(&key.as_str()) {
                *value = Json::Float(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salsa_alloc::{Allocator, ImproveConfig};
    use salsa_sched::{fds_schedule, FuLibrary};

    #[test]
    fn report_has_the_full_shape_and_consistent_numbers() {
        let graph = salsa_cdfg::benchmarks::paper_example();
        let library = FuLibrary::standard();
        let schedule = fds_schedule(&graph, &library, 4).unwrap();
        let result = Allocator::new(&graph, &schedule, &library)
            .seed(3)
            .config(ImproveConfig {
                max_trials: 2,
                moves_per_trial: Some(100),
                ..ImproveConfig::default()
            })
            .run()
            .unwrap();
        let json = report_json(&graph, &schedule, 3, &result);

        assert_eq!(json.get("design").and_then(Json::as_str), Some("paper_example"));
        assert_eq!(json.get("steps").and_then(Json::as_u64), Some(4));
        assert_eq!(json.get("seed").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("cost").and_then(Json::as_u64), Some(result.cost));
        assert_eq!(json.get("verified").and_then(Json::as_bool), Some(true));
        let breakdown = json.get("breakdown").expect("breakdown");
        assert_eq!(
            breakdown.get("registers").and_then(Json::as_u64),
            Some(result.breakdown.used_regs as u64)
        );
        let mux = json.get("mux").expect("mux");
        assert!(
            mux.get("merged").and_then(Json::as_u64).unwrap()
                <= mux.get("point_to_point").and_then(Json::as_u64).unwrap(),
            "merging never increases the mux count"
        );
        let search = json.get("search").expect("search");
        assert!(search.get("attempted").is_some());
        assert_eq!(
            search.get("proposed").and_then(Json::as_u64),
            Some(0),
            "a sequential run draws no batched proposals"
        );
        assert!(search.get("conflict_skipped").is_some());
        assert!(search.get("stale_skipped").is_some());
        assert!(search.get("committed").is_some());
        assert!(json.get("portfolio").and_then(|p| p.get("chains")).is_some());

        // The serializer is stable: same result, same bytes.
        assert_eq!(
            json.to_string_compact(),
            report_json(&graph, &schedule, 3, &result).to_string_compact()
        );

        // Canonicalization zeroes exactly the wall-clock fields, whether
        // the report is bare or wrapped in an ok response.
        let mut bare = json.clone();
        canonicalize_report(&mut bare);
        let search = bare.get("search").unwrap();
        assert_eq!(search.get("elapsed_ms"), Some(&Json::Float(0.0)));
        assert_eq!(search.get("moves_per_sec"), Some(&Json::Float(0.0)));
        assert_eq!(
            bare.get("portfolio").and_then(|p| p.get("speedup")),
            Some(&Json::Float(0.0))
        );
        assert_eq!(search.get("trials"), json.get("search").unwrap().get("trials"));
        let mut wrapped = crate::protocol::ok_response(json.clone());
        canonicalize_report(&mut wrapped);
        assert_eq!(wrapped.get("report"), Some(&bare));
    }

    #[test]
    fn canonicalization_zeroes_certificate_timing_but_keeps_its_substance() {
        let mut report = Json::obj(vec![
            ("cost", Json::Int(42)),
            (
                "certificate",
                Json::obj(vec![
                    ("verdict", Json::Str("certified".into())),
                    ("verify_ms", Json::Float(3.25)),
                    ("trace_id", Json::Str("abc123".into())),
                ]),
            ),
        ]);
        canonicalize_report(&mut report);
        let cert = report.get("certificate").unwrap();
        assert_eq!(cert.get("verify_ms"), Some(&Json::Float(0.0)));
        assert_eq!(cert.get("verdict").and_then(Json::as_str), Some("certified"));
        assert_eq!(cert.get("trace_id").and_then(Json::as_str), Some("abc123"));
        assert_eq!(report.get("cost"), Some(&Json::Int(42)));
    }
}
