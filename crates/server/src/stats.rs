//! Service counters and a bounded latency reservoir.
//!
//! Counters are lock-free atomics bumped on the hot path; latencies go
//! through a small mutex-guarded ring (a full histogram is overkill for
//! jobs that take milliseconds to seconds). Percentiles are computed on
//! demand from the reservoir — with at most [`RESERVOIR_CAP`] samples the
//! sort is negligible next to one allocation job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latency samples kept for percentile estimation. Once full, the oldest
/// sample is dropped — percentiles track the recent window, which is what
/// an operator watching an overloaded service wants anyway.
pub const RESERVOIR_CAP: usize = 4096;

/// Shared service counters. All methods take `&self`.
#[derive(Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    timeouts: AtomicU64,
    latencies: Mutex<std::collections::VecDeque<u64>>,
}

/// A point-in-time copy of the counters, plus derived percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs refused with backpressure (queue full).
    pub rejected: u64,
    /// Jobs that finished with a valid allocation.
    pub completed: u64,
    /// Jobs that failed (schedule/allocation error).
    pub failed: u64,
    /// Jobs cancelled by their deadline.
    pub timeouts: u64,
    /// End-to-end job latency percentiles, milliseconds (0 when no
    /// samples yet).
    pub p50_ms: f64,
    /// 95th percentile latency, ms.
    pub p95_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// Samples currently in the reservoir.
    pub samples: usize,
}

impl ServerStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a queue admission.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a backpressure rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful completion and its end-to-end latency.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    /// Records a failed job (still a latency sample — failures occupy a
    /// worker too).
    pub fn record_failed(&self, latency: Duration) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    /// Records a deadline expiry.
    pub fn record_timeout(&self, latency: Duration) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    fn record_latency(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut reservoir = self.latencies.lock().expect("stats poisoned");
        if reservoir.len() >= RESERVOIR_CAP {
            reservoir.pop_front();
        }
        reservoir.push_back(micros);
    }

    /// Copies the counters and computes latency percentiles.
    pub fn snapshot(&self) -> StatsSnapshot {
        let sorted = {
            let reservoir = self.latencies.lock().expect("stats poisoned");
            let mut v: Vec<u64> = reservoir.iter().copied().collect();
            v.sort_unstable();
            v
        };
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            p50_ms: percentile_ms(&sorted, 50.0),
            p95_ms: percentile_ms(&sorted, 95.0),
            p99_ms: percentile_ms(&sorted, 99.0),
            samples: sorted.len(),
        }
    }
}

/// Nearest-rank percentile over an ascending `sorted` sample of
/// microsecond latencies, reported in milliseconds.
pub fn percentile_ms(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let index = rank.clamp(1, sorted.len()) - 1;
    sorted[index] as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1000).collect(); // 1..=100 ms
        assert_eq!(percentile_ms(&sorted, 50.0), 50.0);
        assert_eq!(percentile_ms(&sorted, 95.0), 95.0);
        assert_eq!(percentile_ms(&sorted, 99.0), 99.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(percentile_ms(&[7000], 99.0), 7.0);
    }

    #[test]
    fn counters_accumulate_independently() {
        let stats = ServerStats::new();
        stats.record_accepted();
        stats.record_accepted();
        stats.record_rejected();
        stats.record_completed(Duration::from_millis(10));
        stats.record_timeout(Duration::from_millis(5));
        stats.record_failed(Duration::from_millis(1));
        let snap = stats.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.samples, 3);
        assert!(snap.p50_ms > 0.0);
        assert!(snap.p99_ms >= snap.p50_ms);
    }

    #[test]
    fn reservoir_is_bounded() {
        let stats = ServerStats::new();
        for i in 0..(RESERVOIR_CAP + 100) {
            stats.record_completed(Duration::from_micros(i as u64));
        }
        assert_eq!(stats.snapshot().samples, RESERVOIR_CAP);
    }
}
