//! # salsa-hls
//!
//! Facade crate for the reproduction of *Data Path Allocation using an
//! Extended Binding Model* (Krishnamoorthy & Nestor, DAC 1992).
//!
//! Re-exports the workspace crates under stable module names so examples
//! and downstream users need a single dependency:
//!
//! * [`cdfg`] — control/data flow graphs and benchmark designs,
//! * [`sched`] — ASAP/ALAP, list and force-directed scheduling,
//! * [`datapath`] — datapath model, interconnect cost, mux merging,
//!   verification,
//! * [`alloc`] — the SALSA extended binding model and allocator (the
//!   paper's contribution),
//! * [`audit`] — verification as a service: move-trace certificates,
//!   record/replay re-derivation of results, portable trace artifacts,
//! * [`baseline`] — traditional-binding-model comparators,
//! * [`rtlgen`] — structural Verilog export of allocated datapaths,
//! * [`serve`] — the TCP allocation service (bounded job queue,
//!   content-addressed result cache, worker pool with per-job
//!   deadlines) and the JSON report serializer,
//! * [`wire`] — the shared newline-delimited-JSON wire layer (parser,
//!   line framing, seeded reconnect backoff),
//! * [`cluster`] — distributed portfolio search: a coordinator leasing
//!   restart-chain shards to worker processes with heartbeat failover
//!   and a bit-exact deterministic reduction.
//!
//! # Quickstart
//!
//! ```
//! use salsa_hls::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = salsa_hls::cdfg::benchmarks::paper_example();
//! let library = FuLibrary::standard();
//! let schedule = fds_schedule(&graph, &library, 4)?;
//! let result = Allocator::new(&graph, &schedule, &library)
//!     .seed(1)
//!     .run()?;
//! assert!(result.verified());
//! # Ok(())
//! # }
//! ```

pub use salsa_alloc as alloc;
pub use salsa_audit as audit;
pub use salsa_baseline as baseline;
pub use salsa_cdfg as cdfg;
pub use salsa_cluster as cluster;
pub use salsa_rtlgen as rtlgen;
pub use salsa_datapath as datapath;
pub use salsa_sched as sched;
pub use salsa_serve as serve;
pub use salsa_wire as wire;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use salsa_alloc::Allocator;
    pub use salsa_cdfg::{Cdfg, CdfgBuilder};
    pub use salsa_datapath::CostWeights;
    pub use salsa_sched::{fds_schedule, FuLibrary, Schedule};
}
