//! `salsa-hls` — command-line front end for the SALSA reproduction.
//!
//! ```text
//! salsa-hls info     <file.cdfg>                      parse, statistics, critical path
//! salsa-hls dot      <file.cdfg>                      Graphviz rendering of the CDFG
//! salsa-hls schedule <file.cdfg> [--steps N] [--pipelined]
//! salsa-hls allocate <file.cdfg> [--steps N] [--extra-regs K] [--seed S]
//!                    [--restarts R] [--threads T] [--cutoff F]
//!                    [--pipelined] [--traditional] [--controller]
//!                    [--verilog PATH] [--testbench PATH] [--dot PATH]
//! salsa-hls bench    <name|--list>                    run a built-in benchmark
//! ```
//!
//! `<file.cdfg>` uses the text format documented in
//! [`salsa_cdfg::parse_cdfg`]; pass `-` to read standard input.

use std::io::Read as _;
use std::process::ExitCode;

use salsa_hls::alloc::{Allocator, ImproveConfig, MoveSet};
use salsa_hls::cdfg::{parse_cdfg, Cdfg};
use salsa_hls::datapath::{bus_allocate, traffic_from_rtl};
use salsa_hls::rtlgen::{control_table, generate_testbench, generate_verilog, VerilogOptions};
use salsa_hls::sched::{asap, fds_schedule, FuClass, FuLibrary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "info" => info(args),
        "dot" => dot(args),
        "schedule" => schedule_cmd(args),
        "allocate" => allocate(args),
        "bench" => bench(args),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'salsa-hls help')")),
    }
}

const HELP: &str = "\
salsa-hls - data path allocation with the SALSA extended binding model

usage:
  salsa-hls info     <file.cdfg>
  salsa-hls dot      <file.cdfg>
  salsa-hls schedule <file.cdfg> [--steps N] [--pipelined]
  salsa-hls allocate <file.cdfg> [--steps N] [--extra-regs K] [--seed S]
                     [--restarts R] [--threads T] [--cutoff F]
                     [--pipelined] [--traditional] [--controller] [--report]
                     [--verilog PATH] [--testbench PATH] [--dot PATH]
  salsa-hls bench    <name|--list>

--restarts runs R independent seeded search chains and keeps the best;
--threads caps the portfolio workers spreading those chains (default: the
machine's parallelism; 1 reproduces the sequential loop bit-for-bit);
--cutoff sets the shared best-bound cutoff factor (>= 1.0, default 1.25).

<file.cdfg> is the text CDFG format ('-' reads stdin), e.g.:
  cdfg iir1
  input x
  state yprev
  const k = 13
  op scaled = mul yprev k
  op y = add x scaled
  feedback yprev <- y
  output y
";

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag)? {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag}: '{raw}' is not valid")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_graph(args: &[String]) -> Result<Cdfg, String> {
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a .cdfg file (or '-' for stdin)")?;
    let source = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    parse_cdfg(&source).map_err(|e| format!("{path}: {e}"))
}

fn library(args: &[String]) -> FuLibrary {
    if has_flag(args, "--pipelined") {
        FuLibrary::pipelined()
    } else {
        FuLibrary::standard()
    }
}

fn info(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    println!("{graph}");
    let lib = FuLibrary::standard();
    println!("critical path: {} control steps (add=1, mul=2)", asap(&graph, &lib).length);
    Ok(())
}

fn dot(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    print!("{}", graph.to_dot());
    Ok(())
}

fn schedule_cmd(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    let lib = library(args);
    let steps = resolve_steps(args, &graph, &lib)?;
    let schedule = fds_schedule(&graph, &lib, steps).map_err(|e| e.to_string())?;
    print!("{}", schedule.display(&graph));
    let demand = schedule.fu_demand(&graph, &lib);
    println!(
        "demand: {} mul, {} alu, {} registers",
        demand[&FuClass::Mul],
        demand[&FuClass::Alu],
        schedule.register_demand(&graph, &lib)
    );
    Ok(())
}

fn resolve_steps(args: &[String], graph: &Cdfg, lib: &FuLibrary) -> Result<usize, String> {
    Ok(match flag_parse::<usize>(args, "--steps")? {
        Some(steps) => steps,
        None => asap(graph, lib).length,
    })
}

fn allocate(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    allocate_graph(&graph, args)
}

fn allocate_graph(graph: &Cdfg, args: &[String]) -> Result<(), String> {
    let lib = library(args);
    let steps = resolve_steps(args, graph, &lib)?;
    let schedule = fds_schedule(graph, &lib, steps).map_err(|e| e.to_string())?;

    let move_set = if has_flag(args, "--traditional") {
        MoveSet::traditional()
    } else {
        MoveSet::full()
    };
    let config = ImproveConfig { move_set, ..ImproveConfig::default() };
    let mut allocator = Allocator::new(graph, &schedule, &lib)
        .seed(flag_parse(args, "--seed")?.unwrap_or(42))
        .extra_registers(flag_parse(args, "--extra-regs")?.unwrap_or(0))
        .restarts(flag_parse(args, "--restarts")?.unwrap_or(1))
        .config(config);
    if let Some(threads) = flag_parse(args, "--threads")? {
        allocator = allocator.threads(threads);
    }
    if let Some(cutoff) = flag_parse(args, "--cutoff")? {
        allocator = allocator.cutoff_factor(cutoff);
    }
    let result = allocator.run().map_err(|e| e.to_string())?;

    println!("{}", result.datapath);
    println!("cost breakdown: {}", result.breakdown);
    println!(
        "equivalent 2-1 muxes: {} point-to-point, {} after merging",
        result.breakdown.mux_equiv,
        result.merged_mux_count()
    );
    let bus = bus_allocate(&traffic_from_rtl(&result.rtl));
    println!(
        "bus style: {} buses, {} total 2-1 equivalents",
        bus.num_buses(),
        bus.total_mux_equiv()
    );
    println!("\n{}", result.rtl);
    if has_flag(args, "--report") {
        println!("{}", salsa_hls::alloc::report(graph, &schedule, &result));
    }
    if has_flag(args, "--controller") {
        println!("{}", control_table(graph, &result));
    }

    let options = VerilogOptions { module_name: format!("dp_{}", graph.name()), width: 16 };
    if let Some(path) = flag_value(args, "--verilog")? {
        let verilog = generate_verilog(graph, &schedule, &lib, &result, &options);
        std::fs::write(&path, verilog).map_err(|e| format!("{path}: {e}"))?;
        println!("verilog written to {path}");
    }
    if let Some(path) = flag_value(args, "--testbench")? {
        // Smoke vectors: three iterations of small deterministic inputs,
        // zero-initialized loop state.
        let inputs: Vec<std::collections::BTreeMap<_, i64>> = (0..3)
            .map(|k| {
                graph
                    .values()
                    .filter(|v| {
                        v.source() == salsa_hls::cdfg::ValueSource::Input && !v.is_state()
                    })
                    .enumerate()
                    .map(|(i, v)| (v.id(), (k as i64 + 1) * 10 + i as i64))
                    .collect()
            })
            .collect();
        let state = graph.state_values().map(|s| (s, 0i64)).collect();
        let tb = generate_testbench(graph, &schedule, &lib, &result, &options, &inputs, &state)
            .map_err(|e| e.to_string())?;
        std::fs::write(&path, tb).map_err(|e| format!("{path}: {e}"))?;
        println!("self-checking testbench written to {path}");
    }
    if let Some(path) = flag_value(args, "--dot")? {
        std::fs::write(&path, graph.to_dot()).map_err(|e| format!("{path}: {e}"))?;
        println!("dot written to {path}");
    }
    Ok(())
}

fn bench(args: &[String]) -> Result<(), String> {
    let all = salsa_hls::cdfg::benchmarks::all();
    if has_flag(args, "--list") || args.len() < 2 {
        println!("built-in benchmarks:");
        for g in &all {
            println!("  {:<14} {}", g.name(), g.stats());
        }
        return Ok(());
    }
    let name = &args[1];
    let graph = all
        .into_iter()
        .find(|g| g.name() == *name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try 'salsa-hls bench --list')"))?;
    allocate_graph(&graph, args)
}
