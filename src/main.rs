//! `salsa-hls` — command-line front end for the SALSA reproduction.
//!
//! ```text
//! salsa-hls info     <file.cdfg>                      parse, statistics, critical path
//! salsa-hls dot      <file.cdfg>                      Graphviz rendering of the CDFG
//! salsa-hls schedule <file.cdfg> [--steps N] [--pipelined]
//! salsa-hls allocate <file.cdfg> [--steps N] [--extra-regs K] [--seed S]
//!                    [--restarts R] [--threads T] [--batch K] [--cutoff F]
//!                    [--pipelined] [--traditional] [--controller]
//!                    [--verilog PATH] [--testbench PATH] [--dot PATH]
//! salsa-hls bench    <name|--list>                    run a built-in benchmark
//! salsa-hls serve    [--addr H:P] [--workers N] [--queue N] [--cache N]
//!                    [--backend local|cluster] [--cluster-listen H:P]
//! salsa-hls submit   [--addr H:P] [--protocol P] (--bench NAME | <file.cdfg>) [knobs...]
//!                    [--verify off|sample|full] [--dump-trace PATH]
//! salsa-hls audit    <artifact.json>                  offline replay of a dumped trace
//! salsa-hls cluster-alloc  (--bench NAME | <file.cdfg>) [knobs...]
//!                    [--listen H:P] [--shard-chains N] [--lease-ms MS]
//! salsa-hls cluster-worker [--addr H:P] [--name NAME] [--poll-ms MS]
//!                    [--heartbeat-ms MS] [--max-reconnects N]
//! ```
//!
//! `<file.cdfg>` uses the text format documented in
//! [`salsa_cdfg::parse_cdfg`]; pass `-` to read standard input.

use std::io::{Read as _, Write as _};
use std::process::ExitCode;

use salsa_hls::alloc::{Allocator, ImproveConfig, MoveSet};
use salsa_hls::cdfg::{parse_cdfg, Cdfg};
use salsa_hls::datapath::{bus_allocate, traffic_from_rtl};
use salsa_hls::rtlgen::{control_table, generate_testbench, generate_verilog, VerilogOptions};
use salsa_hls::sched::{asap, fds_schedule, FuClass, FuLibrary};
use salsa_hls::cluster::{run_worker, ClusterBackend, ClusterConfig, Coordinator, WorkerConfig};
use salsa_hls::serve::{
    canonicalize_report, report_json, Json, Knobs, Server, ServerConfig,
};
use salsa_hls::wire::{Connection, Protocol};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "info" => info(args),
        "dot" => dot(args),
        "schedule" => schedule_cmd(args),
        "allocate" => allocate(args),
        "bench" => bench(args),
        "serve" => serve(args),
        "submit" => submit(args),
        "reallocate" => submit(args),
        "audit" => audit(args),
        "cluster-alloc" => cluster_alloc(args),
        "cluster-worker" => cluster_worker(args),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'salsa-hls help')")),
    }
}

const HELP: &str = "\
salsa-hls - data path allocation with the SALSA extended binding model

usage:
  salsa-hls info     <file.cdfg>
  salsa-hls dot      <file.cdfg>
  salsa-hls schedule <file.cdfg> [--steps N] [--pipelined]
  salsa-hls allocate <file.cdfg> [--steps N] [--extra-regs K] [--seed S]
                     [--restarts R] [--threads T] [--batch K] [--cutoff F]
                     [--pipelined] [--traditional] [--no-plan]
                     [--no-mem-moves] [--controller]
                     [--report] [--json] [--verilog PATH] [--testbench PATH]
                     [--dot PATH]
  salsa-hls bench    <name|--list>
  salsa-hls serve    [--addr HOST:PORT] [--workers N] [--verify-workers N]
                     [--queue N] [--cache N]
                     [--default-timeout-ms MS] [--max-in-flight N]
                     [--idle-timeout-ms MS] [--backend local|cluster]
                     [--cluster-listen HOST:PORT] [--shard-chains N]
                     [--lease-ms MS]
  salsa-hls submit   [--addr HOST:PORT] (--bench NAME | <file.cdfg>)
                     [--steps N] [--extra-regs K] [--seed S] [--restarts R]
                     [--threads T] [--batch K] [--cutoff F] [--pipelined]
                     [--traditional] [--verify off|sample|full]
                     [--dump-trace PATH] [--timeout-ms MS] [--pretty]
                     [--retry N] [--protocol json|binary|auto]
  salsa-hls submit   [--addr HOST:PORT] (--ping | --stats | --shutdown)
  salsa-hls reallocate --base JOB_ID [--addr HOST:PORT]
                     (--bench NAME | <file.cdfg>) [submit knobs...]
  salsa-hls audit    <artifact.json>
  salsa-hls cluster-alloc  (--bench NAME | <file.cdfg>) [--steps N]
                     [--extra-regs K] [--seed S] [--restarts R] [--batch K]
                     [--cutoff F] [--pipelined] [--traditional]
                     [--listen HOST:PORT] [--shard-chains N] [--lease-ms MS]
                     [--canonical]
  salsa-hls cluster-worker [--addr HOST:PORT] [--name NAME] [--poll-ms MS]
                     [--heartbeat-ms MS] [--max-reconnects N]
                     [--protocol json|binary|auto]

--restarts runs R independent seeded search chains and keeps the best;
--threads caps the portfolio workers spreading those chains (default: the
machine's parallelism; 1 reproduces the sequential loop bit-for-bit);
--cutoff sets the shared best-bound cutoff factor (>= 1.0, default 1.25);
--batch K turns on speculative move batches: K proposals per step graded
in parallel, committed in proposal order (results depend only on the seed
and K, never on thread count; --batch 1 matches the sequential loop).
--no-plan disables the compiled move-plan fast path in the proposers (for
A/B verification; the trajectory and result are identical either way).
--no-mem-moves disables the M move family on memory (array) designs,
freezing bank assignment at the initial placement — the ablation
baseline; scalar designs are unaffected.

serve starts the allocation service (default 127.0.0.1:7741, port 0
picks a free port) and runs until a shutdown command drains it. Both
wire protocols are served on the one port: newline-delimited JSON, and
length-prefixed binary frames negotiated by a client hello (see
DESIGN.md section 12). submit sends one request and prints the response
(--json reports use the same serializer in both); --protocol picks its
wire encoding (default auto: binary when the server speaks it). The two
encodings carry the same documents, so reports are byte-identical
either way. --retry N retries backpressure rejections and transient
connection failures up to N times; any other error is final and is
reported at once.

submit --verify sample|full asks the server to certify the result on its
verifier lane (own worker pool, --verify-workers): the winning chain's
committed-move trace is recorded, replayed with cost cross-checks
(sample checks every 16th commit, full checks all), compared bit-for-bit
against the recorded binding and symbolically verified; the response's
report gains a certificate section (verdict, mode, verify_ms, trace_id,
cache provenance, commits). --dump-trace PATH then fetches the portable
trace artifact behind the certificate (the wire trace command) and
writes it to PATH. 'salsa-hls audit PATH' replays such an artifact
offline — no server, no search — re-deriving the binding move-by-move,
verifying it symbolically, re-running the full allocation and
byte-diffing the reproduced canonical report against the artifact's.

reallocate resubmits an *edited* design against a prior job: --base
JOB_ID names the 'id' field of an earlier ok response, and the server
warm-starts the search from that job's winning allocation (label-matched
across the edit, with delta-local move bias). Plain submits also
warm-start transparently when the server's seed index holds a
structurally similar prior design; the report's warm_start section
records the seed's provenance either way, and warm and cold runs never
share a result-cache entry.

--backend cluster makes serve dispatch each job to a worker fleet: it
also binds a coordinator on --cluster-listen (default 127.0.0.1:7742)
and waits for 'salsa-hls cluster-worker' processes to poll it. Restart
chains are leased out in shards; a worker that dies or stalls past its
lease loses the shard to a peer (chains are pure functions of the seed,
so reruns are exact). With no --cutoff the final report is byte-identical
to the local sequential portfolio in canonical form (--canonical zeroes
the wall-clock fields: search.elapsed_ms, search.moves_per_sec,
portfolio.speedup). cluster-alloc is the one-shot form: bind, run one
job against the fleet, print the report, shut down.

<file.cdfg> is the text CDFG format ('-' reads stdin), e.g.:
  cdfg iir1
  input x
  state yprev
  const k = 13
  op scaled = mul yprev k
  op y = add x scaled
  feedback yprev <- y
  output y
";

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag)? {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag}: '{raw}' is not valid")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_graph(args: &[String]) -> Result<Cdfg, String> {
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a .cdfg file (or '-' for stdin)")?;
    let source = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    parse_cdfg(&source).map_err(|e| format!("{path}: {e}"))
}

fn library(args: &[String]) -> FuLibrary {
    if has_flag(args, "--pipelined") {
        FuLibrary::pipelined()
    } else {
        FuLibrary::standard()
    }
}

fn info(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    println!("{graph}");
    let lib = FuLibrary::standard();
    println!("critical path: {} control steps (add=1, mul=2)", asap(&graph, &lib).length);
    Ok(())
}

fn dot(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    print!("{}", graph.to_dot());
    Ok(())
}

fn schedule_cmd(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    let lib = library(args);
    let steps = resolve_steps(args, &graph, &lib)?;
    let schedule = fds_schedule(&graph, &lib, steps).map_err(|e| e.to_string())?;
    print!("{}", schedule.display(&graph));
    let demand = schedule.fu_demand(&graph, &lib);
    println!(
        "demand: {} mul, {} alu, {} registers",
        demand[&FuClass::Mul],
        demand[&FuClass::Alu],
        schedule.register_demand(&graph, &lib)
    );
    Ok(())
}

fn resolve_steps(args: &[String], graph: &Cdfg, lib: &FuLibrary) -> Result<usize, String> {
    Ok(match flag_parse::<usize>(args, "--steps")? {
        Some(steps) => steps,
        None => asap(graph, lib).length,
    })
}

fn allocate(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    allocate_graph(&graph, args)
}

fn allocate_graph(graph: &Cdfg, args: &[String]) -> Result<(), String> {
    let lib = library(args);
    let steps = resolve_steps(args, graph, &lib)?;
    let schedule = fds_schedule(graph, &lib, steps).map_err(|e| e.to_string())?;

    let move_set = if has_flag(args, "--traditional") {
        MoveSet::traditional()
    } else {
        MoveSet::full()
    };
    let config = ImproveConfig { move_set, ..ImproveConfig::default() };
    let seed = flag_parse(args, "--seed")?.unwrap_or(42);
    let mut allocator = Allocator::new(graph, &schedule, &lib)
        .seed(seed)
        .extra_registers(flag_parse(args, "--extra-regs")?.unwrap_or(0))
        .restarts(flag_parse(args, "--restarts")?.unwrap_or(1))
        .config(config)
        .plan(!has_flag(args, "--no-plan"))
        .mem_moves(!has_flag(args, "--no-mem-moves"));
    if let Some(threads) = flag_parse(args, "--threads")? {
        allocator = allocator.threads(threads);
    }
    if let Some(batch) = flag_parse(args, "--batch")? {
        allocator = allocator.batch(batch);
    }
    if let Some(cutoff) = flag_parse(args, "--cutoff")? {
        allocator = allocator.cutoff_factor(cutoff);
    }
    let result = allocator.run().map_err(|e| e.to_string())?;

    if has_flag(args, "--canonical") {
        // Canonical form for byte-exact diffs against a cluster run:
        // compact, with the wall-clock fields zeroed.
        let mut report = report_json(graph, &schedule, seed, &result);
        canonicalize_report(&mut report);
        println!("{}", report.to_string_compact());
    } else if has_flag(args, "--json") {
        // Same serializer as the server's allocate responses.
        println!("{}", report_json(graph, &schedule, seed, &result).to_string_pretty());
    } else {
        println!("{}", result.datapath);
        println!("cost breakdown: {}", result.breakdown);
        println!(
            "equivalent 2-1 muxes: {} point-to-point, {} after merging",
            result.breakdown.mux_equiv,
            result.merged_mux_count()
        );
        let bus = bus_allocate(&traffic_from_rtl(&result.rtl));
        println!(
            "bus style: {} buses, {} total 2-1 equivalents",
            bus.num_buses(),
            bus.total_mux_equiv()
        );
        println!("\n{}", result.rtl);
    }
    if has_flag(args, "--report") {
        println!("{}", salsa_hls::alloc::report(graph, &schedule, &result));
    }
    if has_flag(args, "--controller") {
        println!("{}", control_table(graph, &result));
    }

    let options = VerilogOptions { module_name: format!("dp_{}", graph.name()), width: 16 };
    if let Some(path) = flag_value(args, "--verilog")? {
        let verilog = generate_verilog(graph, &schedule, &lib, &result, &options);
        std::fs::write(&path, verilog).map_err(|e| format!("{path}: {e}"))?;
        println!("verilog written to {path}");
    }
    if let Some(path) = flag_value(args, "--testbench")? {
        // Smoke vectors: three iterations of small deterministic inputs,
        // zero-initialized loop state.
        let inputs: Vec<std::collections::BTreeMap<_, i64>> = (0..3)
            .map(|k| {
                graph
                    .values()
                    .filter(|v| {
                        v.source() == salsa_hls::cdfg::ValueSource::Input && !v.is_state()
                    })
                    .enumerate()
                    .map(|(i, v)| (v.id(), (k as i64 + 1) * 10 + i as i64))
                    .collect()
            })
            .collect();
        let state = graph.state_values().map(|s| (s, 0i64)).collect();
        let tb = generate_testbench(graph, &schedule, &lib, &result, &options, &inputs, &state)
            .map_err(|e| e.to_string())?;
        std::fs::write(&path, tb).map_err(|e| format!("{path}: {e}"))?;
        println!("self-checking testbench written to {path}");
    }
    if let Some(path) = flag_value(args, "--dot")? {
        std::fs::write(&path, graph.to_dot()).map_err(|e| format!("{path}: {e}"))?;
        println!("dot written to {path}");
    }
    Ok(())
}

const DEFAULT_ADDR: &str = "127.0.0.1:7741";
const DEFAULT_CLUSTER_ADDR: &str = "127.0.0.1:7742";

fn serve(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let mut config = ServerConfig::default();
    if let Some(workers) = flag_parse(args, "--workers")? {
        config.workers = workers;
    }
    if let Some(workers) = flag_parse(args, "--verify-workers")? {
        config.verify_workers = workers;
    }
    if let Some(capacity) = flag_parse(args, "--queue")? {
        config.queue_capacity = capacity;
    }
    if let Some(capacity) = flag_parse(args, "--cache")? {
        config.cache_capacity = capacity;
    }
    if let Some(ms) = flag_parse(args, "--default-timeout-ms")? {
        config.default_timeout_ms = Some(ms);
    }
    if let Some(limit) = flag_parse(args, "--max-in-flight")? {
        config.max_in_flight = limit;
    }
    if let Some(ms) = flag_parse(args, "--idle-timeout-ms")? {
        // 0 disables eviction (a debugging convenience).
        config.idle_timeout_ms = if ms == 0 { None } else { Some(ms) };
    }

    let backend = flag_value(args, "--backend")?.unwrap_or_else(|| "local".to_string());
    let coordinator = match backend.as_str() {
        "local" => None,
        "cluster" => {
            let listen =
                flag_value(args, "--cluster-listen")?.unwrap_or_else(|| DEFAULT_CLUSTER_ADDR.to_string());
            let coordinator = std::sync::Arc::new(
                Coordinator::bind(&listen, cluster_config(args)?)
                    .map_err(|e| format!("{listen}: {e}"))?,
            );
            println!("cluster listening on {}", coordinator.local_addr());
            Some(coordinator)
        }
        other => return Err(format!("unknown backend '{other}' (try local or cluster)")),
    };

    let server = match &coordinator {
        Some(coordinator) => Server::bind_with_backend(
            &addr,
            config,
            std::sync::Arc::new(ClusterBackend::new(std::sync::Arc::clone(coordinator))),
        ),
        None => Server::bind(&addr, config),
    }
    .map_err(|e| format!("{addr}: {e}"))?;
    println!("listening on {}", server.local_addr());
    // The banner must reach pipes promptly: scripts wait for it before
    // submitting.
    let _ = std::io::stdout().flush();
    server.join();
    if let Some(coordinator) = coordinator {
        // Tell polling workers to exit; give them one poll period to
        // hear it before the process (and the listener) goes away.
        coordinator.begin_shutdown();
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("drained and stopped");
    Ok(())
}

/// Coordinator tuning shared by `serve --backend cluster` and
/// `cluster-alloc`.
fn cluster_config(args: &[String]) -> Result<ClusterConfig, String> {
    let mut config = ClusterConfig::default();
    if let Some(chains) = flag_parse(args, "--shard-chains")? {
        config.shard_chains = chains;
    }
    if let Some(ms) = flag_parse(args, "--lease-ms")? {
        config.lease_ms = ms;
    }
    Ok(config)
}

/// The allocation knobs shared by `cluster-alloc` (flags mirror
/// `allocate`/`submit`; `--threads` is absent because the cluster pins
/// every chain to one thread — its parallelism is workers).
fn knobs_from_args(args: &[String]) -> Result<Knobs, String> {
    Ok(Knobs {
        steps: flag_parse(args, "--steps")?,
        extra_regs: flag_parse(args, "--extra-regs")?.unwrap_or(0),
        seed: flag_parse(args, "--seed")?.unwrap_or(42),
        restarts: flag_parse(args, "--restarts")?.unwrap_or(1),
        threads: None,
        batch: flag_parse(args, "--batch")?,
        cutoff: flag_parse(args, "--cutoff")?,
        pipelined: has_flag(args, "--pipelined"),
        traditional: has_flag(args, "--traditional"),
        plan: !has_flag(args, "--no-plan"),
        mem_moves: !has_flag(args, "--no-mem-moves"),
        verify: parse_verify(args)?,
        warm: None,
    })
}

fn parse_verify(args: &[String]) -> Result<salsa_hls::audit::VerifyMode, String> {
    match flag_value(args, "--verify")? {
        None => Ok(salsa_hls::audit::VerifyMode::Off),
        Some(raw) => salsa_hls::audit::VerifyMode::parse(&raw)
            .ok_or_else(|| format!("--verify: '{raw}' is not valid (off, sample or full)")),
    }
}

fn load_graph_or_bench(args: &[String]) -> Result<Cdfg, String> {
    if let Some(name) = flag_value(args, "--bench")? {
        return salsa_hls::cdfg::benchmarks::all()
            .into_iter()
            .find(|g| g.name() == name)
            .ok_or_else(|| format!("unknown benchmark '{name}' (try 'salsa-hls bench --list')"));
    }
    load_graph(args)
}

/// One-shot distributed allocation: bind a coordinator, run a single job
/// against whatever workers poll it, print the report, shut down.
fn cluster_alloc(args: &[String]) -> Result<(), String> {
    let graph = load_graph_or_bench(args)?;
    let knobs = knobs_from_args(args)?;
    let listen = flag_value(args, "--listen")?.unwrap_or_else(|| DEFAULT_CLUSTER_ADDR.to_string());
    let coordinator = Coordinator::bind(&listen, cluster_config(args)?)
        .map_err(|e| format!("{listen}: {e}"))?;
    // Banner first and flushed: scripts wait for it before starting the
    // workers that will carry this job.
    println!("cluster listening on {}", coordinator.local_addr());
    let _ = std::io::stdout().flush();

    let outcome = coordinator.allocate(&graph, &knobs, None);
    coordinator.shutdown();
    let mut report = outcome.map_err(|e| format!("[{}] {}", e.kind.as_str(), e.message))?;
    if has_flag(args, "--canonical") {
        canonicalize_report(&mut report);
        println!("{}", report.to_string_compact());
    } else {
        println!("{}", report.to_string_pretty());
    }
    Ok(())
}

/// A cluster worker process: polls the coordinator for leased shards,
/// runs their chains, heartbeats while they run, reports the outcomes.
fn cluster_worker(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr")?.unwrap_or_else(|| DEFAULT_CLUSTER_ADDR.to_string());
    let name = flag_value(args, "--name")?
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let mut config = WorkerConfig::new(addr.clone(), name);
    if let Some(ms) = flag_parse(args, "--poll-ms")? {
        config.poll_ms = ms;
    }
    if let Some(ms) = flag_parse(args, "--heartbeat-ms")? {
        config.heartbeat_ms = ms;
    }
    if let Some(limit) = flag_parse(args, "--max-reconnects")? {
        config.max_reconnects = limit;
    }
    config.protocol = parse_protocol(args)?;
    run_worker(config).map_err(|e| format!("{addr}: {e}"))
}

fn parse_protocol(args: &[String]) -> Result<Protocol, String> {
    match flag_value(args, "--protocol")? {
        None => Ok(Protocol::Auto),
        Some(raw) => Protocol::parse(&raw)
            .ok_or_else(|| format!("--protocol: '{raw}' is not valid (json, binary or auto)")),
    }
}

fn submit(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let protocol = parse_protocol(args)?;
    let request = build_submit_request(args)?;

    // --retry N retries up to N times (N+1 total attempts), with seeded
    // jittered exponential backoff floored at the server's
    // retry_after_ms hint. Only backpressure rejections and transient
    // connection failures are retried; a structured server error is
    // final and reported on the first occurrence. Default 0: one
    // attempt, as before.
    let retries: u32 = flag_parse(args, "--retry")?.unwrap_or(0);
    let mut backoff = salsa_hls::wire::Backoff::new(
        0x5a15_a5abu64 ^ u64::from(std::process::id()),
        std::time::Duration::from_millis(25),
        std::time::Duration::from_secs(5),
    );
    // The connection is reused across retries (backpressure does not
    // cost a reconnect); it is only reopened after an I/O failure.
    let mut conn: Option<Connection> = None;
    let mut attempts_left = retries;
    loop {
        let exchanged = match &mut conn {
            Some(open) => open.call(&request).map_err(|e| format!("{addr}: {e}")),
            None => Connection::connect(&addr, protocol)
                .map_err(|e| format!("{addr}: {e} (is 'salsa-hls serve' running?)"))
                .and_then(|mut fresh| {
                    let reply = fresh.call(&request).map_err(|e| format!("{addr}: {e}"));
                    conn = Some(fresh);
                    reply
                }),
        };
        let parsed = match exchanged {
            Ok(parsed) => parsed,
            Err(message) => {
                conn = None;
                if attempts_left == 0 {
                    return Err(message);
                }
                attempts_left -= 1;
                let delay = backoff.next_delay();
                eprintln!(
                    "{message}; retrying in {} ms ({attempts_left} attempts left)",
                    delay.as_millis()
                );
                std::thread::sleep(delay);
                continue;
            }
        };
        if parsed.get("status").and_then(Json::as_str) == Some("rejected") && attempts_left > 0 {
            attempts_left -= 1;
            let hint = parsed.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(100);
            let delay = backoff.next_delay().max(std::time::Duration::from_millis(hint));
            eprintln!(
                "rejected with backpressure; retrying in {} ms ({attempts_left} attempts left)",
                delay.as_millis()
            );
            std::thread::sleep(delay);
            continue;
        }
        if has_flag(args, "--pretty") {
            println!("{}", parsed.to_string_pretty());
        } else {
            // Compact form: for line-mode servers this is the exact
            // response line; binary responses render identically because
            // both protocols carry the same document.
            println!("{}", parsed.to_string_compact());
        }
        return match parsed.get("status").and_then(Json::as_str) {
            Some("ok") => {
                if let Some(path) = flag_value(args, "--dump-trace")? {
                    let open = conn.as_mut().expect("an ok response came over a connection");
                    dump_trace(open, &parsed, &path)?;
                }
                Ok(())
            }
            Some("rejected") => {
                let hint = parsed.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(0);
                Err(format!("rejected with backpressure (retry after {hint} ms)"))
            }
            Some("error") => {
                let kind = parsed.get("kind").and_then(Json::as_str).unwrap_or("?");
                let message = parsed.get("message").and_then(Json::as_str).unwrap_or("");
                Err(format!("server error [{kind}]: {message}"))
            }
            other => Err(format!("unexpected response status {other:?}")),
        };
    }
}

/// Fetches the trace artifact behind a certified response (the wire
/// `trace` command, on the already-open connection) and writes it to
/// `path` for `salsa-hls audit`.
fn dump_trace(conn: &mut Connection, response: &Json, path: &str) -> Result<(), String> {
    let trace_id = response
        .get("report")
        .and_then(|r| r.get("certificate"))
        .and_then(|c| c.get("trace_id"))
        .and_then(Json::as_str)
        .ok_or("--dump-trace needs a certified response (add --verify sample|full)")?;
    let request = Json::obj(vec![
        ("cmd", Json::Str("trace".to_string())),
        ("id", Json::Str(trace_id.to_string())),
    ]);
    let reply = conn.call(&request).map_err(|e| format!("fetching trace {trace_id}: {e}"))?;
    let artifact = reply
        .get("artifact")
        .ok_or_else(|| format!("trace fetch failed: {}", reply.to_string_compact()))?;
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("trace artifact {trace_id} written to {path}");
    Ok(())
}

/// Offline audit of a dumped trace artifact: decode, replay the trace
/// move-by-move against the embedded canonical design (full cost
/// cross-checks), verify the re-derived binding symbolically, then
/// re-run the whole allocation and byte-diff the reproduced canonical
/// report against the one the artifact certifies.
fn audit(args: &[String]) -> Result<(), String> {
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a trace artifact file (from 'salsa-hls submit --dump-trace')")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = salsa_hls::serve::parse_json(text.trim())
        .map_err(|e| format!("{path}: invalid JSON: {e:?}"))?;
    // Accept both the bare artifact and a saved `trace` response.
    let doc = doc.get("artifact").cloned().unwrap_or(doc);
    let artifact =
        salsa_hls::audit::TraceArtifact::from_json(&doc).map_err(|e| format!("{path}: {e}"))?;

    let graph = parse_cdfg(&artifact.design).map_err(|e| format!("artifact design: {e}"))?;
    let knobs = salsa_hls::serve::knobs_from_json(&artifact.knobs)
        .map_err(|e| format!("artifact knobs: {}", e.message))?;
    let trace = artifact.decode_trace().map_err(|e| format!("artifact trace: {e}"))?;
    let trace_id = salsa_hls::serve::trace_id_hex(trace.fingerprint());

    let verdict = salsa_hls::serve::with_replay_env(&graph, &knobs, |ctx, config| {
        salsa_hls::audit::replay_and_verify(ctx, config, &trace, artifact.cost)
            .map(|(_, verdict)| verdict)
    })
    .map_err(|e| format!("[{}] {}", e.kind.as_str(), e.message))?
    .map_err(|e| e.to_string())?;
    println!(
        "trace {trace_id}: replayed {} commits at cost {}; symbolic verdict: {verdict}",
        trace.commits(),
        artifact.cost
    );
    if !verdict.is_certified() {
        return Err(format!("replayed binding was refuted: {verdict}"));
    }

    // Independent reproduction: the full search from the artifact's
    // knobs must land on the byte-identical canonical report.
    let mut report = salsa_hls::serve::run_allocation(&graph, &knobs, None)
        .map_err(|e| format!("[{}] {}", e.kind.as_str(), e.message))?;
    canonicalize_report(&mut report);
    let reproduced = report.to_string_compact();
    if reproduced == artifact.report {
        println!("report: identical ({} bytes, canonical form)", reproduced.len());
        Ok(())
    } else {
        eprintln!("reproduced: {reproduced}");
        eprintln!("artifact:   {}", artifact.report);
        Err("reproduced canonical report differs from the artifact's".to_string())
    }
}

/// The first token after `submit` that is neither a flag nor the value
/// of a value-taking flag — the `.cdfg` path operand.
fn submit_positional(args: &[String]) -> Option<&String> {
    const VALUE_FLAGS: &[&str] = &[
        "--addr", "--bench", "--steps", "--extra-regs", "--seed", "--restarts", "--threads",
        "--batch", "--cutoff", "--timeout-ms", "--retry", "--protocol", "--verify",
        "--dump-trace", "--base",
    ];
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            i += if VALUE_FLAGS.contains(&arg.as_str()) { 2 } else { 1 };
        } else {
            return Some(arg);
        }
    }
    None
}

fn build_submit_request(args: &[String]) -> Result<Json, String> {
    for (flag, cmd) in [("--ping", "ping"), ("--stats", "stats"), ("--shutdown", "shutdown")] {
        if has_flag(args, flag) {
            return Ok(Json::obj(vec![("cmd", Json::Str(cmd.to_string()))]));
        }
    }
    // `salsa-hls reallocate` shares submit's whole pipeline (connection,
    // retries, knob flags); it only swaps the verb and adds the base id.
    let realloc = args.first().is_some_and(|a| a == "reallocate");
    let verb = if realloc { "reallocate" } else { "allocate" };
    let mut pairs = vec![("cmd".to_string(), Json::Str(verb.to_string()))];
    if realloc {
        let base = flag_value(args, "--base")?
            .ok_or("reallocate needs --base JOB_ID (the 'id' field of a prior ok response)")?;
        pairs.push(("base".to_string(), Json::Str(base)));
    }
    if let Some(bench) = flag_value(args, "--bench")? {
        pairs.push(("bench".to_string(), Json::Str(bench)));
    } else {
        let path = submit_positional(args)
            .ok_or("submit needs --bench NAME, a .cdfg file ('-' for stdin), or --ping/--stats/--shutdown")?;
        let text = if path == "-" {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buffer
        } else {
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
        };
        pairs.push(("cdfg".to_string(), Json::Str(text)));
    }
    for (flag, key) in [
        ("--steps", "steps"),
        ("--extra-regs", "extra_regs"),
        ("--seed", "seed"),
        ("--restarts", "restarts"),
        ("--threads", "threads"),
        ("--batch", "batch"),
        ("--timeout-ms", "timeout_ms"),
    ] {
        if let Some(value) = flag_parse::<i64>(args, flag)? {
            pairs.push((key.to_string(), Json::Int(value)));
        }
    }
    if let Some(cutoff) = flag_parse::<f64>(args, "--cutoff")? {
        pairs.push(("cutoff".to_string(), Json::Float(cutoff)));
    }
    for (flag, key) in [("--pipelined", "pipelined"), ("--traditional", "traditional")] {
        if has_flag(args, flag) {
            pairs.push((key.to_string(), Json::Bool(true)));
        }
    }
    if has_flag(args, "--no-plan") {
        pairs.push(("plan".to_string(), Json::Bool(false)));
    }
    if has_flag(args, "--no-mem-moves") {
        pairs.push(("mem_moves".to_string(), Json::Bool(false)));
    }
    if let Some(verify) = flag_value(args, "--verify")? {
        // Validated locally so a typo fails before the job is queued.
        parse_verify(args)?;
        pairs.push(("verify".to_string(), Json::Str(verify)));
    }
    Ok(Json::Obj(pairs))
}

fn bench(args: &[String]) -> Result<(), String> {
    let all = salsa_hls::cdfg::benchmarks::all();
    if has_flag(args, "--list") || args.len() < 2 {
        println!("built-in benchmarks:");
        for g in &all {
            println!("  {:<14} {}", g.name(), g.stats());
        }
        return Ok(());
    }
    let name = &args[1];
    let graph = all
        .into_iter()
        .find(|g| g.name() == *name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try 'salsa-hls bench --list')"))?;
    allocate_graph(&graph, args)
}
